"""Observability smoke: boot a live cluster, scrape it, lint the scrape.

The end-to-end check behind CI's ``obs`` job: start a 2-shard
:class:`~repro.serve.cluster.service.ShardedPolicyService` with the
HTTP exporter and full trace sampling, drive a few hundred requests,
then validate over real HTTP that

* ``/healthz`` answers ``ok``;
* ``/metrics`` parses clean under ``tools/check_metrics.py`` and
  contains the batcher, router, transport, kernel-backend, and
  per-shard worker series the telemetry spine promises;
* ``/traces`` holds sampled requests whose per-stage spans sum to the
  recorded end-to-end latency (within 10%);
* the Chrome ``trace_event`` export is well-formed JSON;
* ``/events`` serves well-formed JSON Lines with strictly monotone
  sequence numbers, at least one ``publish`` event from boot, and
  worker-origin events carrying per-shard labels (the cross-process
  merge);
* one alert fires end-to-end: a synthetic p95 SLO breach walks
  pending → firing (``repro_alerts_active{rule="p95_slo_burn"} 1``
  on a live scrape, ``slo_breach``/``alert_fire`` in the journal)
  → resolved once traffic stops;
* killing a shard under self-heal writes a black-box postmortem
  bundle that parses under ``repro.obs.postmortem.load_bundle``.

Artifacts (the raw scrapes, the Chrome trace, the events JSONL, and
the postmortem bundles) are written to ``--out`` for upload.  Exits
non-zero on any failure.  Run locally::

    PYTHONPATH=src python tools/obs_smoke.py --out obs-artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from check_metrics import lint_health_families, lint_metrics  # noqa: E402

REQUIRED_SERIES = (
    "repro_batcher_flushes_total",
    "repro_batcher_queue_depth",
    "repro_batcher_flush_size_bucket",
    "repro_router_decisions_total",
    "repro_transport_bytes_sent_total",
    "repro_transport_bytes_received_total",
    "repro_cluster_live_shards",
    "repro_cluster_shard_inflight",
    "repro_shm_resident_bytes",
    "repro_server_requests_total",
    "repro_server_latency_seconds_bucket",
    "repro_native_events_total",
    "repro_worker_traced_requests_total",
)


def _fixture_artifact():
    from repro.core.tree import DecisionTreeClassifier
    from repro.serve import PolicyArtifact

    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (400, 5))
    y = (x[:, 0] > 0.5).astype(int) * 2 + (x[:, 2] > 0.4).astype(int)
    tree = DecisionTreeClassifier(max_leaf_nodes=32).fit(x, y)
    return PolicyArtifact.from_tree(tree, name="abr")


def _get(url: str) -> bytes:
    return urllib.request.urlopen(url, timeout=10).read()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="obs-artifacts",
                        help="artifact directory (default: obs-artifacts)")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--requests", type=int, default=300)
    args = parser.parse_args()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    from repro.obs.postmortem import load_bundle
    from repro.serve.cluster.service import ShardedPolicyService

    failures = []
    rng = np.random.default_rng(1)
    with ShardedPolicyService(
        n_shards=args.shards, max_batch=8, max_delay_s=0.002,
        trace_sample=1.0, exporter_port=0, self_heal=True,
        postmortem_dir=str(out / "postmortems"),
    ) as service:
        service.publish("abr", _fixture_artifact())
        for _ in range(args.requests):
            result = service.submit(
                "abr", rng.uniform(0, 1, 5)
            ).result(timeout=30)
            if not result.ok:
                failures.append(f"serving error: {result.error}")
                break
        url = service.exporter.url

        health = _get(url + "/healthz")
        if health != b"ok\n":
            failures.append(f"/healthz answered {health!r}")

        scrape = _get(url + "/metrics").decode()
        (out / "metrics.prom").write_text(scrape)
        for error in lint_metrics(scrape):
            failures.append(f"/metrics lint: {error}")
        for series in REQUIRED_SERIES:
            if series not in scrape:
                failures.append(f"/metrics missing series {series}")
        for shard_id in range(args.shards):
            if f'shard="{shard_id}"' not in scrape:
                failures.append(
                    f"/metrics missing shard={shard_id} labeled series"
                )

        traces = json.loads(_get(url + "/traces"))
        (out / "traces.json").write_text(json.dumps(traces, indent=1))
        if not traces["traces"]:
            failures.append("/traces returned no sampled traces")
        for trace in traces["traces"][:50]:
            span_sum = sum(s["duration_s"] for s in trace["spans"])
            total = trace["total_s"]
            if total > 0 and abs(span_sum - total) > 0.1 * total:
                failures.append(
                    f"trace {trace['trace_id']}: spans sum {span_sum:.6f}s"
                    f" vs total {total:.6f}s (>10% apart)"
                )

        chrome = json.loads(_get(url + "/traces?format=chrome"))
        (out / "trace.chrome.json").write_text(json.dumps(chrome))
        if not chrome.get("traceEvents"):
            failures.append("chrome export has no traceEvents")

        # -- alert end-to-end: synthetic p95 SLO breach ----------------
        # An SLO of 1 microsecond is unmeetable, so the burn-rate rule
        # breaches on real traffic; short windows and for_s make the
        # full pending -> firing -> resolved walk take seconds.
        monitor = service.start_health(
            slo_p95_ms=0.001, fast_window_s=1.0, slow_window_s=1.0,
            for_s=0.1, interval_s=0.02,
        )
        deadline = time.monotonic() + 20
        while (time.monotonic() < deadline
               and not monitor.active_alerts()):
            service.submit("abr", rng.uniform(0, 1, 5)).result(timeout=30)
        if not any("p95_slo_burn" in key
                   for key in monitor.active_alerts()):
            failures.append("p95_slo_burn alert never fired")
        scrape = _get(url + "/metrics").decode()
        (out / "metrics.prom").write_text(scrape)  # richer page wins
        if 'repro_alerts_active{rule="p95_slo_burn"} 1' not in scrape:
            failures.append(
                "firing alert gauge not visible on a live /metrics scrape"
            )
        if "repro_events_total" not in scrape:
            failures.append("/metrics missing series repro_events_total")
        for error in lint_metrics(scrape):
            failures.append(f"/metrics lint (post-alert): {error}")
        for error in lint_health_families(scrape):
            failures.append(f"/metrics health-family lint: {error}")
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and monitor.active_alerts():
            time.sleep(0.1)
        if monitor.active_alerts():
            failures.append("alert did not resolve after traffic stopped")
        kinds = [event["kind"] for event in service.events()]
        for needed in ("slo_breach", "alert_fire", "alert_resolve"):
            if needed not in kinds:
                failures.append(
                    f"journal missing {needed} after the alert cycle"
                )

        # -- chaos: shard kill -> self-heal + postmortem bundle --------
        victim = service._shards[0].shard_id
        service.kill_shard(victim)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            kinds = [event["kind"] for event in service.events()]
            if "shard_heal" in kinds:
                break
            time.sleep(0.1)
        for needed in ("shard_death", "shard_heal"):
            if needed not in kinds:
                failures.append(
                    f"journal missing {needed} after shard kill"
                )
        result = service.submit(
            "abr", rng.uniform(0, 1, 5)
        ).result(timeout=30)
        if not result.ok:
            failures.append(
                f"serving error after self-heal: {result.error}"
            )
        # Two bundles by now: the page-severity alert fired one, the
        # shard death another.  All must parse; one must be the death's.
        bundles = sorted((out / "postmortems").glob("pm-*.json"))
        if not bundles:
            failures.append("no postmortem bundle written")
        reasons = []
        for path in bundles:
            try:
                reasons.append(str(load_bundle(path).get("reason", "")))
            except ValueError as exc:
                failures.append(f"postmortem bundle unreadable: {exc}")
        if not any(r.startswith("shard_death") for r in reasons):
            failures.append(
                f"no shard_death postmortem bundle (reasons: {reasons})"
            )
        if not any(r.startswith("alert_") for r in reasons):
            failures.append(
                f"no page-alert postmortem bundle (reasons: {reasons})"
            )

        # -- /events: JSONL contract + cross-process merge -------------
        raw_events = _get(url + "/events?since=0").decode()
        (out / "events.jsonl").write_text(raw_events)
        events = []
        for line in filter(None, raw_events.splitlines()):
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                failures.append(f"/events line is not JSON: {line[:80]!r}")
        seqs = [event.get("seq") for event in events]
        if not events:
            failures.append("/events returned no events")
        if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
            failures.append("/events seq is not strictly monotone")
        if not any(event.get("kind") == "publish" for event in events):
            failures.append("/events has no publish event from boot")
        if not any(event.get("kind") == "publish"
                   and "shard" in (event.get("labels") or {})
                   for event in events):
            failures.append(
                "/events has no worker-origin (shard-labeled) publish "
                "event — cross-process journal merge broken"
            )
        if seqs:
            mid = seqs[len(seqs) // 2]
            later = _get(url + f"/events?since={mid}").decode()
            later_seqs = [json.loads(line)["seq"]
                          for line in filter(None, later.splitlines())]
            if any(seq <= mid for seq in later_seqs):
                failures.append(
                    f"/events?since={mid} returned seq <= {mid}"
                )

    for failure in failures:
        print(f"obs_smoke: FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    n_samples = sum(1 for line in scrape.splitlines()
                    if line.strip() and not line.startswith("#"))
    print(f"obs_smoke: OK — {n_samples} metric samples, "
          f"{len(traces['traces'])} traces, {len(events)} journal "
          f"events, {len(bundles)} postmortem bundle(s), "
          f"artifacts in {out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
