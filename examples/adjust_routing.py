"""Ad-hoc rerouting guided by mask values (§6.5 / Fig. 18).

An operator must move a demand off its current path (pricing, policy,
maintenance).  Candidates divert at different nodes; the mask-derived
indicator predicts which candidate will have lower latency *without
installing either*.

Run:  python examples/adjust_routing.py
"""

import numpy as np

from repro.core.hypergraph import (
    CriticalConnectionSearch,
    RoutingMaskedSystem,
)
from repro.core.hypergraph.adjust import quadrant_fractions, rerouting_scatter
from repro.envs.routing import gravity_demands, nsfnet
from repro.teachers.routenet import RouteNetStar, train_routenet


def main() -> None:
    topology = nsfnet()
    traffics = gravity_demands(topology, utilization=0.5, seed=42, count=50)
    net = train_routenet(topology, traffics[:10], epochs=2000, seed=0)
    star = RouteNetStar(topology, net, temperature=0.6)

    traffic = traffics[7]
    routing = star.optimize(traffic, sweeps=2, seed=0)
    system = RoutingMaskedSystem(star, routing, traffic,
                                 output_kind="latency")
    mask = CriticalConnectionSearch(
        lambda1=0.05, lambda2=0.2, steps=300, lr=0.05
    ).run(system, seed=1)

    print("Enumerating rerouting scenarios (p0 with two candidates that")
    print("divert at different nodes) and checking the indicator...\n")
    points = rerouting_scatter(topology, routing, traffic, mask)
    fractions = quadrant_fractions(points)
    print(f"   scenarios:                  {len(points)}")
    print(f"   observation holds (I/III):  {fractions['consistent']:.1%}")
    print(f"   near-axis (ambiguous):      {fractions['near_axis']:.1%}")
    print(f"   violations (II/IV):         {fractions['violations']:.1%}")

    # Show one concrete recommendation.
    decisive = [p for p in points
                if abs(p.w_delta) > 0.2 and abs(p.l_delta) > 1e-3]
    if decisive:
        p = max(decisive, key=lambda q: abs(q.w_delta))
        better = p.p2 if p.w_delta > 0 else p.p1
        print("\nExample recommendation:")
        print(f"   demand {p.pair}: candidates {p.p1} vs {p.p2}")
        print(f"   indicator delta {p.w_delta:+.2f} -> prefer {better}")
        print(f"   measured latency delta confirms: {p.l_delta:+.4f}")


if __name__ == "__main__":
    main()
