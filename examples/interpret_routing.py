"""Interpret an SDN routing optimizer with hypergraph mask search (§4).

Trains the RouteNet-style latency predictor, runs the close-loop
RouteNet* optimizer on one NSFNet traffic sample, then searches for the
critical (path, link) connections and prints the Table-3-style ranking
plus the Fig. 9 statistics.

Run:  python examples/interpret_routing.py
"""

import numpy as np

from repro.core.hypergraph import (
    CriticalConnectionSearch,
    RoutingMaskedSystem,
)
from repro.envs.routing import gravity_demands, nsfnet
from repro.envs.routing.delay import link_loads
from repro.teachers.routenet import RouteNetStar, train_routenet
from repro.utils.stats import pearson_correlation


def main() -> None:
    print("1) Topology + traffic + RouteNet latency predictor...")
    topology = nsfnet()
    traffics = gravity_demands(topology, utilization=0.5, seed=42, count=50)
    net = train_routenet(topology, traffics[:10], epochs=2000, seed=0)
    star = RouteNetStar(topology, net, temperature=0.6)

    traffic = traffics[20]
    print("2) RouteNet* picks routing paths for all 182 demands...")
    routing = star.optimize(traffic, sweeps=2, seed=0)

    print("3) Critical-connection search (Eq. 4-9)...")
    system = RoutingMaskedSystem(
        star, routing, traffic, output_kind="latency"
    )
    search = CriticalConnectionSearch(
        lambda1=0.05, lambda2=0.2, steps=300, lr=0.05
    )
    result = search.run(system, seed=1)

    print("\nTop-5 critical connections (cf. paper Table 3):")
    for label, value, _, _ in result.top_connections(5):
        print(f"   {value:.3f}   {label}")

    values = result.mask_values()
    mid = float(((values >= 0.2) & (values <= 0.8)).mean())
    corr = pearson_correlation(
        result.vertex_mask_sums(), link_loads(topology, routing, traffic)
    )
    print(f"\nMask statistics (cf. paper Fig. 9):")
    print(f"   median-valued connections: {mid:.1%} (bimodal is good)")
    print(f"   mask-sum vs link-traffic correlation: r = {corr:.2f}")


if __name__ == "__main__":
    main()
