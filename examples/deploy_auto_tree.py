"""Interpret AuTO's lRLA and compile it for on-device deployment (§6.4).

Trains the AuTO agents, distills the long-flow scheduler into a
classification tree, renders the interpretation, and emits the pure-branch
C function the paper deployed on a SmartNIC.

Run:  python examples/deploy_auto_tree.py
"""

import numpy as np

from repro.core.distill import DistillDataset, distill_from_dataset
from repro.core.tree.codegen import loc_estimate, tree_to_c
from repro.core.tree.export import render_text
from repro.deploy import (
    SERVER_DNN,
    SERVER_TREE,
    SMARTNIC_TREE,
    decision_latency_dnn,
    decision_latency_tree,
)
from repro.teachers.auto import (
    LRLA_FEATURE_NAMES,
    collect_auto_dataset,
    train_auto,
)


def main() -> None:
    print("1) Training AuTO (sRLA thresholds + lRLA priorities)...")
    teacher = train_auto(episodes=150, load=0.75, seed=0)

    print("2) Recording the lRLA's decisions and distilling the tree...")
    ls, la, lr, ss, sa = collect_auto_dataset(teacher, windows=30, load=0.75)
    tree = distill_from_dataset(
        DistillDataset(states=ls, actions=la),
        leaf_nodes=2000, n_classes=teacher.lrla.n_actions,
    )
    agreement = (tree.act_greedy_batch(ls) == la).mean()
    print(f"   {len(la)} decisions; tree fidelity {agreement:.1%}; "
          f"{tree.tree.n_leaves} leaves")

    print("\n3) Interpretation (top 3 layers):\n")
    print(render_text(
        tree.tree, feature_names=list(LRLA_FEATURE_NAMES),
        action_names=[f"prio{i}" for i in range(5)], max_depth=3,
    ))

    print("\n4) Deployment cost (modeled, cf. paper Fig. 16a / §6.4):")
    dnn_ms = decision_latency_dnn(teacher.lrla.net, SERVER_DNN) * 1e3
    tree_ms = decision_latency_tree(tree.tree, SERVER_TREE) * 1e3
    nic_us = decision_latency_tree(tree.tree, SMARTNIC_TREE) * 1e6
    print(f"   DNN on the server:   {dnn_ms:8.2f} ms / decision")
    print(f"   tree on the server:  {tree_ms:8.2f} ms / decision "
          f"({dnn_ms / tree_ms:.0f}x faster)")
    print(f"   tree on a SmartNIC:  {nic_us:8.2f} us / decision")

    source = tree_to_c(tree.tree, feature_names=list(LRLA_FEATURE_NAMES))
    print(f"\n5) Generated C: {len(source.splitlines())} LoC "
          f"(estimate {loc_estimate(tree.tree)}); first lines:\n")
    print("\n".join(source.splitlines()[:10]))


if __name__ == "__main__":
    main()
