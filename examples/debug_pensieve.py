"""Debug an RL policy through its distillation dataset (§6.3).

Reproduces the paper's debugging story: the teacher rarely selects some
bitrates; because the conversion exposes an explicit dataset, the fix is
to oversample the rare actions and refit only the tree — no DNN
retraining.

Run:  python examples/debug_pensieve.py
"""

import numpy as np

from repro.core.distill import distill_from_dataset, oversample_rare_actions
from repro.core.distill.viper import collect_teacher_dataset
from repro.envs.abr import run_policy
from repro.teachers.pensieve import default_abr_env, train_pensieve

BITRATES = (300, 750, 1200, 1850, 2850, 4300)


def frequencies(actions: np.ndarray) -> np.ndarray:
    return np.bincount(actions, minlength=6) / max(len(actions), 1)


def main() -> None:
    env = default_abr_env(trace_kind="hsdpa", n_traces=60)
    teacher = train_pensieve(env, episodes=3000, seed=0)

    print("1) Collect the teacher's decisions and inspect the imbalance:")
    dataset = collect_teacher_dataset(env, teacher, 25, rng=21)
    freq = frequencies(dataset.actions)
    for rate, f in zip(BITRATES, freq):
        flag = "   <-- rarely selected" if f < 0.01 else ""
        print(f"   {rate:>5} kbps: {f:6.2%}{flag}")

    print("\n2) Oversample the rare bitrates to ~1% and refit the tree:")
    boosted = oversample_rare_actions(dataset, target_frequency=0.01, rng=5)
    plain = distill_from_dataset(dataset, leaf_nodes=200, n_classes=6)
    fixed = distill_from_dataset(boosted, leaf_nodes=200, n_classes=6)
    print(f"   dataset grew {len(dataset)} -> {len(boosted)} samples")

    print("\n3) QoE before/after the fix (20 sessions):")
    results = {}
    for name, policy in (("Pensieve (DNN)", teacher),
                         ("Metis tree", plain),
                         ("Metis tree + oversampling", fixed)):
        qoe = np.mean([
            run_policy(policy, env, trace=t, rng=1).qoe_mean
            for t in env.traces[:20]
        ])
        results[name] = qoe
        print(f"   {name:<28} {qoe:+.3f}")


if __name__ == "__main__":
    main()
