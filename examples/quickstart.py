"""Quickstart: distill a trained ABR DNN into a readable decision tree,
then serve it on an elastic 2-shard cluster and survive a shard kill.

Trains (or loads from cache) a small Pensieve-style teacher, converts it
with Metis' teacher-student pipeline, prints the Fig.-7-style tree,
compares QoE — the end-to-end §3 workflow in ~a minute — and finishes
with the deployment story: the distilled tree published to a
2-shard ``ShardedPolicyService`` with self-healing on, one shard killed
mid-traffic, and the replacement watched replaying back to
byte-identical registry state (see docs/cluster.md).

Run:  python examples/quickstart.py
"""

import time
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np

from repro.config import MetisConfig
from repro.core.distill import distill_from_env
from repro.core.tree.export import render_text
from repro.envs.abr import run_policy
from repro.envs.abr.env import FEATURE_NAMES
from repro.teachers.pensieve import default_abr_env, train_pensieve

ACTIONS = ["300kbps", "750kbps", "1200kbps", "1850kbps", "2850kbps",
           "4300kbps"]


def main() -> None:
    print("1) Building the ABR environment and training the teacher DNN...")
    env = default_abr_env(trace_kind="hsdpa", n_traces=60)
    teacher = train_pensieve(env, episodes=3000, seed=0)

    print("2) Converting the DNN into a decision tree (Metis §3.2)...")
    student = distill_from_env(
        env, teacher,
        MetisConfig(leaf_nodes=200, dagger_iterations=4, resample=False),
        episodes_per_iteration=15, seed=3,
    )
    print(f"   tree: {student.tree.n_leaves} leaves, "
          f"depth {student.tree.depth}")

    print("\n3) Top layers of the interpretation (cf. paper Fig. 7):\n")
    print(render_text(
        student.tree, feature_names=list(FEATURE_NAMES),
        action_names=ACTIONS, max_depth=3,
    ))

    print("\n4) QoE comparison on 15 held-out streaming sessions:")
    q_teacher, q_student = [], []
    for trace in env.traces[:15]:
        q_teacher.append(run_policy(teacher, env, trace=trace, rng=1).qoe_mean)
        q_student.append(run_policy(student, env, trace=trace, rng=1).qoe_mean)
    qt, qs = np.mean(q_teacher), np.mean(q_student)
    print(f"   Pensieve (DNN):      {qt:+.3f}")
    print(f"   Metis+Pensieve tree: {qs:+.3f} "
          f"({(qt - qs) / abs(qt) * 100:+.2f}% vs DNN)")

    elastic_cluster_demo(student.tree)


def elastic_cluster_demo(tree) -> None:
    """Serve the distilled tree on a 2-shard elastic cluster, kill a
    shard under live traffic, and watch self-healing replay restore
    full capacity with identical registry state (docs/cluster.md)."""
    from repro.serve import PolicyArtifact
    from repro.serve.cluster import ShardedPolicyService
    from repro.serve.loadgen import abr_request_states

    print("\n5) Serving the tree on an elastic 2-shard cluster...")
    states = abr_request_states(n_sessions=4, n_chunks=24)
    with ShardedPolicyService(n_shards=2, self_heal=True,
                              adaptive_delay=True) as service:
        service.publish("abr", PolicyArtifact.from_tree(tree, name="abr"),
                        alias="abr/prod")
        actions = service.predict("abr/prod", states[:128])
        view = service.cluster_metrics()
        print(f"   {len(actions)} decisions across "
              f"{view['live_shards']} shards "
              f"(router: {view['routing']['router']})")

        victim = service._shards[0].shard_id
        print(f"   killing shard {victim} mid-traffic...")
        service.kill_shard(victim)
        # the kill window: requests keep flowing; any that were routed
        # at the victim fail loudly as shard_error, none hang
        futures = [service.submit("abr/prod", row) for row in states[:64]]
        results, hung = [], 0
        for future in futures:
            try:
                results.append(future.result(timeout=30))
            except FutureTimeoutError:  # builtin alias only since 3.11
                hung += 1
        failed = sum(1 for r in results if not r.ok)
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            if service.cluster_metrics()["live_shards"] == 2:
                break
            time.sleep(0.05)
        recovered = service.cluster_metrics()["live_shards"]
        print(f"   {len(results)} in-flight requests resolved "
              f"({failed} structured shard_error, {hung} hung)")
        print(f"   live shards after self-heal: {recovered}")

        replicas = service.replica_states()
        identical = all(
            repr(state) == repr(replicas["parent"])
            for state in replicas["shards"].values()
        )
        print(f"   replacement replayed the control log: replica "
              f"state byte-identical = {identical}")
        check = service.predict("abr/prod", states[:16])
        print(f"   replacement serves the same policy: "
              f"{np.array_equal(check, tree.predict(states[:16]))}")


if __name__ == "__main__":
    main()
