"""Quickstart: distill a trained ABR DNN into a readable decision tree.

Trains (or loads from cache) a small Pensieve-style teacher, converts it
with Metis' teacher-student pipeline, prints the Fig.-7-style tree, and
compares QoE — the end-to-end §3 workflow in ~a minute.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import MetisConfig
from repro.core.distill import distill_from_env
from repro.core.tree.export import render_text
from repro.envs.abr import run_policy
from repro.envs.abr.env import FEATURE_NAMES
from repro.teachers.pensieve import default_abr_env, train_pensieve

ACTIONS = ["300kbps", "750kbps", "1200kbps", "1850kbps", "2850kbps",
           "4300kbps"]


def main() -> None:
    print("1) Building the ABR environment and training the teacher DNN...")
    env = default_abr_env(trace_kind="hsdpa", n_traces=60)
    teacher = train_pensieve(env, episodes=3000, seed=0)

    print("2) Converting the DNN into a decision tree (Metis §3.2)...")
    student = distill_from_env(
        env, teacher,
        MetisConfig(leaf_nodes=200, dagger_iterations=4, resample=False),
        episodes_per_iteration=15, seed=3,
    )
    print(f"   tree: {student.tree.n_leaves} leaves, "
          f"depth {student.tree.depth}")

    print("\n3) Top layers of the interpretation (cf. paper Fig. 7):\n")
    print(render_text(
        student.tree, feature_names=list(FEATURE_NAMES),
        action_names=ACTIONS, max_depth=3,
    ))

    print("\n4) QoE comparison on 15 held-out streaming sessions:")
    q_teacher, q_student = [], []
    for trace in env.traces[:15]:
        q_teacher.append(run_policy(teacher, env, trace=trace, rng=1).qoe_mean)
        q_student.append(run_policy(student, env, trace=trace, rng=1).qoe_mean)
    qt, qs = np.mean(q_teacher), np.mean(q_student)
    print(f"   Pensieve (DNN):      {qt:+.3f}")
    print(f"   Metis+Pensieve tree: {qs:+.3f} "
          f"({(qt - qs) / abs(qt) * 100:+.2f}% vs DNN)")


if __name__ == "__main__":
    main()
