"""Hot-swap under concurrent load: zero dropped futures, no torn artifacts.

The serving guarantee under test: a registry publish during sustained
traffic is atomic — requests batched before the swap finish on the old
version, requests batched after see the new one, every response is
attributable to exactly one published version, and the decision it
carries matches that version's artifact (no tearing).

The probe policies are *constant* trees: version ``v`` always answers
action ``v - 1``, so ``action == version - 1`` is a per-response
consistency proof.
"""

import threading
from collections import Counter

import numpy as np
import pytest

from repro.core.tree import DecisionTreeClassifier
from repro.serve import ModelRegistry, PolicyArtifact, PolicyServer

N_FEATURES = 6
N_CLIENTS = 6
PHASE_REQUESTS = 40


def constant_artifact(action: int) -> PolicyArtifact:
    """A fitted single-leaf tree that always answers ``action``."""
    rng = np.random.default_rng(action)
    x = rng.uniform(0, 1, (40, N_FEATURES))
    y = np.full(40, action, dtype=int)
    tree = DecisionTreeClassifier(n_classes=8, max_leaf_nodes=4).fit(x, y)
    return PolicyArtifact.from_tree(tree, name=f"const-{action}")


@pytest.fixture()
def states():
    return np.random.default_rng(9).uniform(0, 1, (256, N_FEATURES))


def test_hotswap_phases_are_clean(states):
    """Requests strictly before/after a publish land on the right version."""
    with PolicyServer(max_batch=16, max_delay_s=1e-3) as server:
        server.publish("policy", constant_artifact(0), alias="policy/prod")
        published_v2 = threading.Event()
        barrier = threading.Barrier(N_CLIENTS + 1)
        outputs = [None] * N_CLIENTS

        def client(idx: int) -> None:
            rng = np.random.default_rng(idx)
            rows = states[rng.integers(0, len(states), 2 * PHASE_REQUESTS)]
            phase_a = [
                server.submit("policy/prod", row).result(timeout=30)
                for row in rows[:PHASE_REQUESTS]
            ]
            barrier.wait()       # every phase-A request is complete...
            published_v2.wait()  # ...before v2 exists; then swap happens
            phase_b = [
                server.submit("policy/prod", row).result(timeout=30)
                for row in rows[PHASE_REQUESTS:]
            ]
            outputs[idx] = (phase_a, phase_b)

        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        server.publish("policy", constant_artifact(1))
        published_v2.set()
        for t in threads:
            t.join()

    for phase_a, phase_b in outputs:
        assert len(phase_a) == len(phase_b) == PHASE_REQUESTS
        assert all(r.ok and r.version == 1 and r.action == 0
                   for r in phase_a)
        assert all(r.ok and r.version == 2 and r.action == 1
                   for r in phase_b)


def test_hotswap_under_sustained_chaos(states):
    """Publishes racing live traffic: every future completes, every
    response's action is consistent with the version that claims it."""
    registry = ModelRegistry()
    n_versions = 5
    with PolicyServer(registry=registry, max_batch=16,
                      max_delay_s=1e-3) as server:
        server.publish("policy", constant_artifact(0))
        stop = threading.Event()
        outputs = [None] * N_CLIENTS

        def client(idx: int) -> None:
            rng = np.random.default_rng(100 + idx)
            results = []
            while not stop.is_set():
                row = states[int(rng.integers(len(states)))]
                results.append(
                    server.submit("policy", row).result(timeout=30)
                )
            # A tail strictly after the final publish: guarantees the
            # last version actually serves traffic before we assert on it.
            for _ in range(10):
                row = states[int(rng.integers(len(states)))]
                results.append(
                    server.submit("policy", row).result(timeout=30)
                )
            outputs[idx] = results

        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        # Keep swapping while the clients hammer the alias.
        for version in range(1, n_versions):
            threading.Event().wait(0.01)
            server.publish("policy", constant_artifact(version))
        stop.set()
        for t in threads:
            t.join()
        metrics = server.metrics()["policy"]

    versions_seen = Counter()
    total = 0
    for results in outputs:
        total += len(results)
        for res in results:
            assert res.ok, (res.error, res.detail)
            # no torn artifact: the decision matches the claimed version
            assert res.action == res.version - 1
            assert 1 <= res.version <= n_versions
            versions_seen[res.version] += 1
    # zero dropped futures: the server accounted for every request
    assert metrics["requests"] == total
    assert metrics["errors"] == 0
    assert sum(metrics["versions"].values()) == total
    # the final version serves the post-publish tail, and the run
    # actually exercised a swap (more than one version answered)
    assert versions_seen[n_versions] >= 10 * N_CLIENTS
    assert len(versions_seen) >= 2
