"""Canary/shadow traffic splitting, including hot-swap under load.

The staged-rollout guarantees under test:

* a canary split routes ~the configured fraction and every response is
  attributable to the version that actually served it;
* shadow answers are recorded in the shadow report and **never**
  returned to a client future;
* split reconfiguration under live load is atomic at flush granularity;
* a registry hot-swap racing live traffic *with a split active* drops
  zero futures and tears no artifact.
"""

import threading
from collections import Counter

import numpy as np
import pytest

from repro.core.tree import DecisionTreeClassifier
from repro.serve import (
    PolicyArtifact,
    PolicyServer,
    TrafficSplit,
    TrafficSplitter,
)

N_FEATURES = 6


def constant_artifact(action: int) -> PolicyArtifact:
    """A fitted single-leaf tree that always answers ``action``."""
    rng = np.random.default_rng(action)
    x = rng.uniform(0, 1, (40, N_FEATURES))
    y = np.full(40, action, dtype=int)
    tree = DecisionTreeClassifier(n_classes=16, max_leaf_nodes=4).fit(x, y)
    return PolicyArtifact.from_tree(tree, name=f"const-{action}")


@pytest.fixture()
def states():
    return np.random.default_rng(9).uniform(0, 1, (256, N_FEATURES))


class TestTrafficSplitConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficSplit(ref="m")  # neither canary nor shadow
        with pytest.raises(ValueError):
            TrafficSplit(ref="m", canary="m@2", canary_fraction=0.0)
        with pytest.raises(ValueError):
            TrafficSplit(ref="m", canary_fraction=0.3)
        with pytest.raises(ValueError):
            TrafficSplit(ref="m", canary="m@2", canary_fraction=1.5)

    def test_assign_fraction_and_determinism(self):
        splitter = TrafficSplitter(seed=7)
        splitter.set_split("m", canary="m@2", canary_fraction=0.25)
        plan = splitter.assign("m", 20_000)
        frac = plan.canary_mask.mean()
        assert 0.22 < frac < 0.28
        # same seed -> same assignment stream
        again = TrafficSplitter(seed=7)
        again.set_split("m", canary="m@2", canary_fraction=0.25)
        assert np.array_equal(
            again.assign("m", 20_000).canary_mask, plan.canary_mask
        )
        assert splitter.assign("other", 5) is None

    def test_clear_and_active_flag(self):
        splitter = TrafficSplitter(seed=0)
        assert not splitter.active
        splitter.set_split("m", shadow="m@2")
        assert splitter.active
        splitter.clear("m")
        assert not splitter.active
        assert splitter.assign("m", 4) is None

    def test_shadow_report_accumulates(self):
        splitter = TrafficSplitter(seed=0)
        splitter.set_split("m", shadow="m@2")
        splitter.record_shadow("m", "m@2", [1, 2, 3, 4], [1, 2, 0, 4])
        splitter.record_shadow_error("m", "m@2", 2)
        report = splitter.shadow_report()["m"]
        assert report["requests"] == 6
        assert report["agreements"] == 3
        assert report["errors"] == 2
        assert report["agreement_rate"] == pytest.approx(0.5)

    def test_merge_shadow_reports(self):
        a = TrafficSplitter()
        a.record_shadow("m", "m@2", [1, 1], [1, 0])
        b = TrafficSplitter()
        b.record_shadow("m", "m@2", [2, 2, 2], [2, 2, 2])
        a.merge_shadow_report(b.shadow_report())
        merged = a.shadow_report()["m"]
        assert merged["requests"] == 5 and merged["agreements"] == 4


class TestServerSplitting:
    def test_canary_fraction_routes_and_attributes(self, states):
        with PolicyServer(max_batch=32, max_delay_s=1e-3,
                          split_seed=3) as server:
            server.publish("policy", constant_artifact(0))
            server.publish("policy", constant_artifact(1))
            # prod pinned at stable v1; the canary earns trust on 30%
            server.registry.alias("policy/prod", "policy", version=1)
            server.set_split("policy/prod", canary="policy@2",
                             canary_fraction=0.3)
            results = [
                server.submit("policy/prod", row).result(timeout=30)
                for row in np.tile(states, (4, 1))
            ]
        assert all(r.ok for r in results)
        versions = Counter(r.version for r in results)
        # canary got a real share, primary kept the rest
        assert versions[1] > 0 and versions[2] > 0
        frac = versions[2] / sum(versions.values())
        assert 0.15 < frac < 0.45
        # attribution: the decision matches the version that claims it
        assert all(r.action == r.version - 1 for r in results)

    def test_shadow_recorded_never_returned(self, states):
        with PolicyServer(max_batch=32, max_delay_s=1e-3) as server:
            server.publish("policy", constant_artifact(0))  # v1 primary
            server.publish("policy", constant_artifact(0))  # v2 agrees
            server.publish("policy", constant_artifact(5))  # v3 disagrees
            server.registry.alias("policy/prod", "policy", version=1)
            server.set_split("policy/prod", shadow="policy@3")
            results = [
                server.submit("policy/prod", row).result(timeout=30)
                for row in states[:64]
            ]
            report = server.shadow_report()["policy/prod"]
            metrics = server.metrics()["policy"]
        # every client answer came from the primary — the shadow's
        # action (5) never leaked
        assert all(r.ok and r.version == 1 and r.action == 0
                   for r in results)
        assert report["shadow"] == "policy@3"
        assert report["requests"] == 64
        assert report["agreements"] == 0  # total disagreement, recorded
        # shadow traffic does not pollute serving metrics
        assert metrics["requests"] == 64
        assert metrics["versions"] == {1: 64}

    def test_shadow_mirrors_only_primary_traffic(self, states):
        """Canaried rows are served by the candidate itself — mirroring
        them against the same candidate would fake perfect agreement.
        With canary == shadow and a disagreeing candidate, the rate
        must read ~0, not ~fraction."""
        with PolicyServer(max_batch=16, max_delay_s=1e-3,
                          split_seed=2) as server:
            server.publish("policy", constant_artifact(0))
            server.publish("policy", constant_artifact(7))  # candidate
            server.registry.alias("policy/prod", "policy", version=1)
            server.set_split("policy/prod", canary="policy@2",
                             canary_fraction=0.5, shadow="policy@2")
            results = [
                server.submit("policy/prod", row).result(timeout=30)
                for row in np.tile(states, (2, 1))
            ]
            report = server.shadow_report()["policy/prod"]
        served_by_primary = sum(1 for r in results if r.version == 1)
        assert 0 < served_by_primary < len(results)
        # only primary-served rows were mirrored...
        assert report["requests"] == served_by_primary
        # ...and the candidate disagrees with all of them
        assert report["agreements"] == 0
        assert report["agreement_rate"] == 0.0

    def test_shadow_agreement_counts(self, states):
        with PolicyServer(max_batch=16, max_delay_s=1e-3) as server:
            server.publish("policy", constant_artifact(2))
            server.publish("policy", constant_artifact(2))
            server.set_split("policy", shadow="policy@1")
            for row in states[:32]:
                assert server.submit("policy", row).result(30).ok
            report = server.shadow_report()["policy"]
        assert report["requests"] == 32
        assert report["agreements"] == 32
        assert report["agreement_rate"] == 1.0

    def test_set_split_validates_refs(self, states):
        with PolicyServer() as server:
            server.publish("policy", constant_artifact(0))
            with pytest.raises(KeyError):
                server.set_split("policy", canary="ghost",
                                 canary_fraction=0.5)
            with pytest.raises(KeyError):
                server.set_split("ghost", shadow="policy")

    def test_set_split_rejects_feature_mismatch(self, states):
        """A canary/shadow with a different feature space would fail
        (canary) or silently mis-predict (shadow) its whole fraction —
        refuse at install time."""
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, (40, 3))  # 3 features, primary has 6
        narrow = DecisionTreeClassifier(
            n_classes=4, max_leaf_nodes=4
        ).fit(x, np.zeros(40, dtype=int))
        with PolicyServer() as server:
            server.publish("policy", constant_artifact(0))
            server.publish("narrow", PolicyArtifact.from_tree(narrow))
            with pytest.raises(ValueError, match="features"):
                server.set_split("policy", canary="narrow",
                                 canary_fraction=0.3)
            with pytest.raises(ValueError, match="features"):
                server.set_split("policy", shadow="narrow")

    def test_retire_refuses_split_targets(self, states):
        """A version a split still routes to must not be retirable —
        the registry alone cannot see the split."""
        with PolicyServer(max_batch=16, max_delay_s=1e-3) as server:
            server.publish("policy", constant_artifact(0))
            server.publish("policy", constant_artifact(1))
            server.publish("policy", constant_artifact(2))
            server.set_split("policy", canary="policy@2",
                             canary_fraction=0.5)
            with pytest.raises(ValueError, match="split"):
                server.retire("policy", 2)
            server.retire("policy", 1)  # untargeted old version is fine
            server.clear_split("policy")
            server.retire("policy", 2)  # cleared split unblocks it

    def test_cluster_retire_refuses_split_targets(self, states):
        from repro.serve.cluster import ShardedPolicyService

        with ShardedPolicyService(n_shards=2) as service:
            service.publish("policy", constant_artifact(0))
            service.publish("policy", constant_artifact(1))
            service.publish("policy", constant_artifact(2))
            service.set_split("policy", shadow="policy@1")
            assert "policy" in service.splits()
            with pytest.raises(ValueError, match="split"):
                service.retire("policy", 1)
            service.clear_split("policy")
            service.retire("policy", 1)

    def test_mixed_shape_canary_shadow_survives(self, states):
        """A canary whose actions are shaped differently from the
        primary's makes the shadow comparison ragged; that must count
        as shadow error, not kill the batcher (or, cluster-side, the
        already-served primaries)."""
        from repro.core.tree import DecisionTreeRegressor

        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, (60, N_FEATURES))
        y2 = np.stack([x[:, 0], x[:, 1] * 2.0], axis=1)
        reg = DecisionTreeRegressor(max_leaf_nodes=8).fit(x, y2)
        with PolicyServer(max_batch=64, max_delay_s=20e-3,
                          split_seed=1) as server:
            server.publish("policy", constant_artifact(0))
            server.publish("vec", PolicyArtifact.from_tree(reg))
            server.set_split("policy", canary="vec",
                             canary_fraction=0.5, shadow="policy@1")
            futures = [
                server.submit("policy", row) for row in states[:32]
            ]
            results = [f.result(timeout=30) for f in futures]
            # the batcher thread survived the ragged comparison
            follow_up = server.submit("policy", states[0]).result(30)
            report = server.shadow_report()["policy"]
        assert all(r.ok for r in results)
        assert follow_up.ok
        assert report["requests"] > 0

    def test_broken_shadow_cannot_hurt_primaries(self, states):
        def boom(batch):
            raise RuntimeError("shadow kaboom")

        broken = PolicyArtifact(
            name="broken", kind="function", n_features=N_FEATURES,
            n_outputs=2, predict_batch=boom, content_hash="0" * 16,
        )
        with PolicyServer(max_batch=16, max_delay_s=1e-3) as server:
            server.publish("policy", constant_artifact(1))
            server.publish("shadowpol", broken)
            server.set_split("policy", shadow="shadowpol")
            results = [
                server.submit("policy", row).result(timeout=30)
                for row in states[:32]
            ]
            report = server.shadow_report()["policy"]
        assert all(r.ok and r.action == 1 for r in results)
        assert report["errors"] == 32 and report["agreements"] == 0


class TestHotSwapUnderSplitLoad:
    """Acceptance: publishes racing live traffic with splitting active —
    zero dropped futures, shadow never returned, no torn artifacts."""

    N_CLIENTS = 6

    def test_hotswap_with_active_split(self, states):
        with PolicyServer(max_batch=16, max_delay_s=1e-3,
                          split_seed=11) as server:
            server.publish("policy", constant_artifact(0))  # v1 stable
            server.publish("policy", constant_artifact(1))  # v2 canary
            server.publish("policy", constant_artifact(9))  # v3 shadow
            server.registry.alias("policy/prod", "policy", version=1)
            server.set_split("policy/prod", canary="policy@2",
                             canary_fraction=0.3, shadow="policy@3")
            stop = threading.Event()
            outputs = [None] * self.N_CLIENTS

            def client(idx: int) -> None:
                rng = np.random.default_rng(100 + idx)
                results = []
                while not stop.is_set():
                    row = states[int(rng.integers(len(states)))]
                    results.append(
                        server.submit("policy/prod", row).result(timeout=30)
                    )
                for _ in range(10):  # tail after the final re-pin
                    row = states[int(rng.integers(len(states)))]
                    results.append(
                        server.submit("policy/prod", row).result(timeout=30)
                    )
                outputs[idx] = results

            threads = [
                threading.Thread(target=client, args=(i,), daemon=True)
                for i in range(self.N_CLIENTS)
            ]
            for t in threads:
                t.start()
            # Hot-swap the primary by publishing and re-pinning the
            # alias, and re-install the split, all while clients hammer
            # the alias.
            final_version = 3
            for action in (3, 4):
                threading.Event().wait(0.02)
                version = server.publish(
                    "policy", constant_artifact(action)
                )
                server.registry.alias("policy/prod", "policy",
                                      version=version)
                server.set_split(
                    "policy/prod", canary="policy@2",
                    canary_fraction=0.3, shadow="policy@3",
                )
                final_version = version
            stop.set()
            for t in threads:
                t.join()
            metrics = server.metrics()["policy"]
            report = server.shadow_report()["policy/prod"]

        total = 0
        versions_seen = Counter()
        for results in outputs:
            total += len(results)
            for res in results:
                assert res.ok, (res.error, res.detail)
                # no tearing: decision matches the claimed version
                assert res.action == res.version - 1
                # the shadow version's answer (9 -> action 8) never
                # reached a client
                assert res.version != 3
                versions_seen[res.version] += 1
        # zero dropped futures: the server accounted for every request
        assert metrics["requests"] == total
        assert metrics["errors"] == 0
        assert sum(metrics["versions"].values()) == total
        # the canary stayed in rotation and the swaps actually landed:
        # the post-swap tail (10 requests x 6 clients) splits between
        # the re-pinned primary (~70%) and the canary (~30%)
        assert versions_seen[2] > 0
        assert versions_seen[final_version] >= 20
        assert len(versions_seen) >= 3
        # shadow mirrored primary traffic throughout
        assert report["requests"] > 0
        assert report["shadow"] == "policy@3"

    def test_cluster_hotswap_with_active_split(self, states):
        """Same guarantees across process boundaries (2 shards)."""
        from repro.serve.cluster import ShardedPolicyService

        with ShardedPolicyService(n_shards=2, max_batch=32,
                                  max_delay_s=1e-3,
                                  split_seed=13) as service:
            service.publish("policy", constant_artifact(0))  # v1
            service.publish("policy", constant_artifact(1))  # v2 canary
            service.publish("policy", constant_artifact(9))  # v3 shadow
            service.alias("policy/prod", "policy", version=1)
            service.set_split("policy/prod", canary="policy@2",
                              canary_fraction=0.3, shadow="policy@3")
            stop = threading.Event()
            outputs = [None] * 4

            def client(idx: int) -> None:
                rng = np.random.default_rng(200 + idx)
                results = []
                while not stop.is_set():
                    row = states[int(rng.integers(len(states)))]
                    results.append(
                        service.submit("policy/prod", row).result(
                            timeout=30
                        )
                    )
                for _ in range(10):
                    row = states[int(rng.integers(len(states)))]
                    results.append(
                        service.submit("policy/prod", row).result(
                            timeout=30
                        )
                    )
                outputs[idx] = results

            threads = [
                threading.Thread(target=client, args=(i,), daemon=True)
                for i in range(4)
            ]
            for t in threads:
                t.start()
            final_version = 3
            for action in (3, 4):
                threading.Event().wait(0.05)
                final_version = service.publish(
                    "policy", constant_artifact(action)
                )
                service.alias("policy/prod", "policy",
                              version=final_version)
            stop.set()
            for t in threads:
                t.join()
            metrics = service.metrics()["policy"]
            report = service.shadow_report()["policy/prod"]

        total = 0
        versions_seen = Counter()
        for results in outputs:
            total += len(results)
            for res in results:
                assert res.ok, (res.error, res.detail)
                assert res.action == res.version - 1
                assert res.version != 3  # shadow never returned
                versions_seen[res.version] += 1
        assert metrics["requests"] == total
        assert metrics["errors"] == 0
        assert versions_seen[2] > 0  # canary served cross-process
        # the post-swap tail splits ~70/30 with the canary
        assert versions_seen[final_version] >= 12  # swap landed
        assert report["requests"] > 0
        assert report["shadow"] == "policy@3"
