"""Tests for the interpretation baselines: k-means, LIME, LEMNA."""

import numpy as np
import pytest

from repro.core.baselines import LemnaInterpreter, LimeInterpreter, kmeans
from repro.core.baselines.clustering import assign_clusters


class TestKMeans:
    def test_k_clusters_returned(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 2))
        centroids, assign = kmeans(x, 4, seed=0)
        assert centroids.shape == (4, 2)
        assert set(np.unique(assign)) == {0, 1, 2, 3}

    def test_separable_clusters_found(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 0.1, size=(50, 2))
        b = rng.normal(5, 0.1, size=(50, 2))
        x = np.concatenate([a, b])
        _, assign = kmeans(x, 2, seed=0)
        # All of a in one cluster, all of b in the other.
        assert len(set(assign[:50])) == 1
        assert len(set(assign[50:])) == 1
        assert assign[0] != assign[-1]

    def test_k_clipped_to_n(self):
        x = np.zeros((3, 2))
        centroids, _ = kmeans(x, 10, seed=0)
        assert centroids.shape[0] == 3

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 0)

    def test_assign_clusters_nearest(self):
        centroids = np.array([[0.0, 0.0], [10.0, 10.0]])
        out = assign_clusters(np.array([[1.0, 1.0], [9.0, 9.0]]), centroids)
        assert list(out) == [0, 1]

    def test_deterministic(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(60, 3))
        _, a = kmeans(x, 3, seed=7)
        _, b = kmeans(x, 3, seed=7)
        assert np.array_equal(a, b)


def _linear_problem(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    w = np.array([[1.0, -1.0], [0.5, 0.5], [0.0, 2.0]])
    y = x @ w
    return x, y


class TestLime:
    def test_fits_linear_map_exactly(self):
        x, y = _linear_problem()
        lime = LimeInterpreter(n_clusters=1).fit(x, y, seed=0)
        pred = lime.predict_outputs(x)
        assert np.sqrt(((pred - y) ** 2).mean()) < 0.01

    def test_predict_argmax(self):
        x, y = _linear_problem()
        lime = LimeInterpreter(n_clusters=3).fit(x, y, seed=0)
        actions = lime.predict(x)
        assert set(np.unique(actions)) <= {0, 1}

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            LimeInterpreter().predict_outputs(np.zeros((2, 3)))

    def test_piecewise_function_needs_clusters(self):
        # y = |x| is badly fit by one global line, better with clusters.
        rng = np.random.default_rng(1)
        x = rng.uniform(-2, 2, size=(500, 1))
        y = np.abs(x)
        one = LimeInterpreter(n_clusters=1).fit(x, y, seed=0)
        many = LimeInterpreter(n_clusters=8).fit(x, y, seed=0)
        err_one = np.abs(one.predict_outputs(x) - y).mean()
        err_many = np.abs(many.predict_outputs(x) - y).mean()
        assert err_many < err_one

    def test_1d_outputs_accepted(self):
        x, y = _linear_problem()
        lime = LimeInterpreter(n_clusters=2).fit(x, y[:, 0], seed=0)
        assert lime.predict_outputs(x).shape == (x.shape[0], 1)


class TestLemna:
    def test_fits_mixture_of_lines(self):
        # Two regimes: y = +2x and y = -2x depending on a hidden switch
        # correlated with x[1]; mixture regression should beat one line.
        rng = np.random.default_rng(2)
        x = rng.normal(size=(600, 2))
        switch = x[:, 1] > 0
        y = np.where(switch, 2 * x[:, 0], -2 * x[:, 0])[:, None]
        lemna = LemnaInterpreter(
            n_clusters=4, components=2, em_iterations=20
        ).fit(x, y, seed=0)
        lime = LimeInterpreter(n_clusters=1).fit(x, y, seed=0)
        err_lemna = np.abs(lemna.predict_outputs(x) - y).mean()
        err_lime = np.abs(lime.predict_outputs(x) - y).mean()
        assert err_lemna < err_lime

    def test_small_cluster_fallback(self):
        x = np.zeros((3, 2))
        y = np.ones((3, 1))
        lemna = LemnaInterpreter(n_clusters=1, components=4).fit(x, y, seed=0)
        pred = lemna.predict_outputs(x)
        assert np.allclose(pred, 1.0, atol=0.2)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            LemnaInterpreter().predict_outputs(np.zeros((2, 3)))

    def test_predict_argmax_shape(self):
        x, y = _linear_problem()
        lemna = LemnaInterpreter(n_clusters=2, components=2).fit(x, y, seed=0)
        assert lemna.predict(x).shape == (x.shape[0],)
