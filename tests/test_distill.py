"""Tests for the distillation pipeline: dataset ops, VIPER loop, metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MetisConfig
from repro.core.distill import (
    DistillDataset,
    DistilledPolicy,
    distill_from_dataset,
    distill_from_env,
    distill_regressor,
    fidelity_accuracy,
    fidelity_rmse,
    oversample_rare_actions,
)
from repro.core.distill.viper import (
    collect_student_states,
    collect_teacher_dataset,
)


class _RuleTeacher:
    """A deterministic 'DNN': bitrate follows the buffer level."""

    n_actions = 6

    def act_greedy(self, state):
        return int(np.clip(state[1] / 5.0, 0, 5))

    def act_greedy_batch(self, states):
        return np.clip(states[:, 1] / 5.0, 0, 5).astype(int)

    def q_values(self, states):
        # Peaked at the greedy action.
        n = states.shape[0]
        q = np.zeros((n, self.n_actions))
        q[np.arange(n), self.act_greedy_batch(states)] = 1.0
        return q


class TestDistillDataset:
    def test_length_checked(self):
        with pytest.raises(ValueError):
            DistillDataset(states=np.zeros((3, 2)), actions=np.zeros(2))

    def test_merge_concatenates(self):
        a = DistillDataset(states=np.zeros((2, 3)), actions=np.zeros(2))
        b = DistillDataset(states=np.ones((3, 3)), actions=np.ones(3))
        merged = a.merge(b)
        assert len(merged) == 5
        assert merged.weights.shape == (5,)

    def test_resample_preserves_size(self):
        ds = DistillDataset(states=np.arange(10)[:, None],
                            actions=np.arange(10) % 2)
        out = ds.resample(np.ones(10), rng=0)
        assert len(out) == 10

    def test_resample_follows_probabilities(self):
        ds = DistillDataset(states=np.arange(4)[:, None],
                            actions=np.array([0, 0, 1, 1]))
        p = np.array([0.0, 0.0, 0.0, 1.0])
        out = ds.resample(p, rng=0)
        assert np.all(out.states == 3)

    def test_resample_zero_weights_fall_back_to_uniform(self):
        ds = DistillDataset(states=np.arange(5)[:, None],
                            actions=np.zeros(5))
        out = ds.resample(np.zeros(5), rng=0)
        assert len(out) == 5

    def test_resample_negative_rejected(self):
        ds = DistillDataset(states=np.zeros((2, 1)), actions=np.zeros(2))
        with pytest.raises(ValueError):
            ds.resample(np.array([-1.0, 1.0]))

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_resample_actions_stay_paired(self, seed):
        # Resampling must keep (state, action) rows together.
        states = np.arange(20)[:, None].astype(float)
        actions = np.arange(20) % 3
        ds = DistillDataset(states=states, actions=actions)
        rng = np.random.default_rng(seed)
        out = ds.resample(rng.random(20), rng=seed)
        assert np.array_equal(
            out.actions, out.states[:, 0].astype(int) % 3
        )


class TestOversampling:
    def _dataset(self):
        rng = np.random.default_rng(0)
        actions = np.concatenate([np.zeros(990), np.ones(10)]).astype(int)
        states = rng.normal(size=(1000, 3))
        return DistillDataset(states=states, actions=actions)

    def test_rare_action_reaches_target(self):
        out = oversample_rare_actions(self._dataset(), 0.05, rng=1)
        freq = (out.actions == 1).mean()
        assert freq >= 0.045

    def test_common_action_untouched(self):
        ds = self._dataset()
        out = oversample_rare_actions(ds, 0.005, rng=1)
        assert len(out) == len(ds)

    def test_never_seen_action_ignored(self):
        ds = DistillDataset(states=np.zeros((10, 2)),
                            actions=np.zeros(10, dtype=int))
        out = oversample_rare_actions(ds, 0.01, rng=1)
        assert set(np.unique(out.actions)) == {0}

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            oversample_rare_actions(self._dataset(), 1.5)


class TestMetrics:
    def test_accuracy(self):
        assert fidelity_accuracy([1, 2, 3], [1, 2, 0]) == pytest.approx(2 / 3)

    def test_rmse(self):
        assert fidelity_rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fidelity_accuracy([1], [1, 2])


class TestViperLoop:
    def test_collect_teacher_dataset(self, tiny_env):
        teacher = _RuleTeacher()
        ds = collect_teacher_dataset(tiny_env, teacher, 3, rng=0)
        assert len(ds) == 3 * tiny_env.video.n_chunks
        assert np.array_equal(
            ds.actions, teacher.act_greedy_batch(ds.states)
        )

    def test_distill_recovers_rule_teacher(self, tiny_env):
        teacher = _RuleTeacher()
        student = distill_from_env(
            tiny_env, teacher,
            MetisConfig(leaf_nodes=50, dagger_iterations=3, resample=False),
            episodes_per_iteration=6, seed=0,
        )
        ds = collect_teacher_dataset(tiny_env, teacher, 4, rng=9)
        acc = fidelity_accuracy(
            ds.actions, student.act_greedy_batch(ds.states)
        )
        assert acc > 0.9

    def test_resampling_path_runs(self, tiny_env):
        teacher = _RuleTeacher()
        student = distill_from_env(
            tiny_env, teacher,
            MetisConfig(leaf_nodes=20, dagger_iterations=2, resample=True),
            episodes_per_iteration=4, seed=0,
        )
        assert student.tree.n_leaves <= 20

    def test_custom_resample_weights(self, tiny_env):
        teacher = _RuleTeacher()
        calls = []

        def weights(states):
            calls.append(len(states))
            return np.ones(states.shape[0])

        distill_from_env(
            tiny_env, teacher,
            MetisConfig(leaf_nodes=20, dagger_iterations=2, resample=True),
            episodes_per_iteration=4, seed=0, resample_weights=weights,
        )
        assert calls  # the hook was used

    def test_student_states_collected(self, tiny_env):
        teacher = _RuleTeacher()
        student = distill_from_env(
            tiny_env, teacher,
            MetisConfig(leaf_nodes=20, dagger_iterations=1, resample=False),
            episodes_per_iteration=3, seed=0,
        )
        visited = collect_student_states(tiny_env, student, 2, rng=1)
        assert visited.shape[1] == 25

    def test_distilled_policy_interfaces(self, tiny_env):
        teacher = _RuleTeacher()
        student = distill_from_env(
            tiny_env, teacher,
            MetisConfig(leaf_nodes=20, dagger_iterations=1, resample=False),
            episodes_per_iteration=3, seed=0,
        )
        state = tiny_env.reset(rng=0)
        assert 0 <= student.select(state, tiny_env) < 6
        probs = student.action_probabilities(state[None, :])
        assert probs.shape == (1, 6)


class TestDatasetDistillers:
    def test_classification_from_dataset(self):
        rng = np.random.default_rng(0)
        states = rng.normal(size=(400, 4))
        actions = (states[:, 0] > 0).astype(int)
        ds = DistillDataset(states=states, actions=actions)
        policy = distill_from_dataset(ds, leaf_nodes=10, n_classes=2)
        assert fidelity_accuracy(
            actions, policy.act_greedy_batch(states)
        ) > 0.95

    def test_pruned_variant(self):
        rng = np.random.default_rng(0)
        states = rng.normal(size=(400, 4))
        actions = ((states[:, 0] > 0) * 2 + (states[:, 1] > 0)).astype(int)
        ds = DistillDataset(states=states, actions=actions)
        policy = distill_from_dataset(
            ds, leaf_nodes=64, n_classes=4, prune_leaves=4
        )
        assert policy.tree.n_leaves <= 4

    def test_regressor_multi_output(self):
        rng = np.random.default_rng(0)
        states = rng.normal(size=(300, 3))
        targets = np.stack([states[:, 0], -states[:, 0]], axis=1)
        reg = distill_regressor(states, targets, leaf_nodes=64)
        pred = reg.predict(states)
        assert pred.shape == targets.shape
        assert fidelity_rmse(targets, pred) < 0.5
