"""Tests for the compiled native inference tier (repro.core.tree.native).

The contract under test: every backend returns *bit-identical* results,
and every native failure — no compiler, corrupt cache entry, bad kernel
— degrades to numpy with a counter bump, never an exception.
"""

import threading

import numpy as np
import pytest

from repro.core.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.core.tree import native
from repro.core.tree.cart import Node
from repro.core.tree.flat import FlatTree
from repro.serve import ModelRegistry, PolicyArtifact, PolicyServer
from repro.serve.registry import registry_backend_report

HAS_CC = native.find_compiler() is not None
needs_cc = pytest.mark.skipif(not HAS_CC, reason="no C compiler on PATH")


@pytest.fixture(autouse=True)
def kernel_cache(tmp_path, monkeypatch):
    """Isolate every test: private kernel cache, zeroed counters, and no
    inherited backend forcing from the environment."""
    root = tmp_path / "kernels"
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(root))
    monkeypatch.delenv("REPRO_TREE_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_KERNEL_CACHE_LIMIT", raising=False)
    native.reset_native_stats()
    yield root
    native.reset_native_stats()


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(512, 6))
    y = ((x[:, 0] > 0) * 2 + (x[:, 1] + x[:, 2] > 0.3)).astype(int)
    tree = DecisionTreeClassifier(max_leaf_nodes=64).fit(x, y)
    # Awkward rows the kernel must handle like numpy: NaN and +-inf
    # compare false against any threshold, so they go right.
    hard = x.copy()
    hard[:7, 0] = np.nan
    hard[7:11, 1] = np.inf
    hard[11:15, 2] = -np.inf
    return tree, np.vstack([x, hard])


def fresh_flat(tree) -> FlatTree:
    """A FlatTree copy with no attached kernel or counter history."""
    return FlatTree.from_arrays(tree.flat.to_arrays())


def _chain_flat(depth: int) -> FlatTree:
    """A pathological chain tree ``depth`` internal nodes deep."""
    root = Node(feature=0, threshold=0.5, value=np.array([1.0, 0.0]))
    cur = root
    for i in range(depth):
        cur.left = Node(value=np.array([1.0, 0.0]))
        last = i == depth - 1
        cur.right = Node(
            feature=-1 if last else 0,
            threshold=float(i) + 1.5,
            value=np.array([0.0, 1.0]),
        )
        cur = cur.right
    return FlatTree.from_node(root)


class TestLayout:
    """BFS table construction and hashing (no compiler needed)."""

    def test_bfs_tables_shape_and_self_loops(self, fitted):
        tree, _ = fitted
        flat = tree.flat
        tables = native._bfs_tables(flat)
        n = flat.node_count
        assert tables["feat"].shape == (n,)
        assert tables["kids"].shape == (2 * n,)
        # The LEAF table is the BFS->preorder bijection.
        assert sorted(tables["leaf"].tolist()) == list(range(n))
        # Leaves self-loop in the packed children table.
        leaves = np.nonzero(tables["feat"] < 0)[0]
        assert np.array_equal(tables["kids"][2 * leaves], leaves)
        assert np.array_equal(tables["kids"][2 * leaves + 1], leaves)
        # Root of the BFS order is the preorder root.
        assert tables["leaf"][0] == 0

    def test_hash_is_content_based(self, fitted):
        tree, x = fitted
        a = native.kernel_hash(tree.flat)
        assert a == native.kernel_hash(fresh_flat(tree))
        rng = np.random.default_rng(3)
        other = DecisionTreeClassifier(max_leaf_nodes=4).fit(
            x[:100], (x[:100, 0] > 0).astype(int)
        )
        assert native.kernel_hash(other.flat) != a

    def test_source_embeds_abi_and_hash(self, fitted):
        tree, _ = fitted
        khash = native.kernel_hash(tree.flat)
        src = native.emit_kernel_source(tree.flat)
        for needle in ("repro_predict_batch", "repro_predict_class",
                       "repro_kernel_api", khash):
            assert needle in src
        assert src.count("{") == src.count("}")

    def test_backend_mode_resolution(self, monkeypatch):
        assert native.backend_mode() == "auto"
        monkeypatch.setenv("REPRO_TREE_BACKEND", "numpy")
        assert native.backend_mode() == "numpy"
        assert native.backend_mode("native") == "native"  # arg wins
        monkeypatch.setenv("REPRO_TREE_BACKEND", "cuda")
        with pytest.raises(ValueError, match="unknown tree backend"):
            native.backend_mode()

    def test_unkernelable_tree_counts_not_raises(self):
        # Feature ids beyond int16: no kernel, a counter, no exception.
        flat = FlatTree(
            feature=np.array([70_000, -1, -1], dtype=np.intp),
            threshold=np.array([0.5, 0.0, 0.0]),
            children_left=np.array([1, -1, -1], dtype=np.intp),
            children_right=np.array([2, -1, -1], dtype=np.intp),
            value=np.array([[1.0, 1.0], [1.0, 0.0], [0.0, 1.0]]),
            n_samples=np.ones(3),
            impurity=np.zeros(3),
        )
        assert native.ensure_kernel(flat) is None
        assert native.native_stats()["unkernelable"] == 1
        assert "int16" in native.last_error()


@needs_cc
class TestEquivalence:
    """Bit-for-bit agreement between the kernel and the numpy walks."""

    def test_apply_and_class_and_proba(self, fitted):
        tree, x = fitted
        flat = fresh_flat(tree)
        want_leaf = flat.apply(x, backend="numpy")
        want_cls = flat.predict_class(x, backend="numpy")
        want_val = flat.leaf_values(x, backend="numpy")
        assert np.array_equal(flat.apply(x, backend="native"), want_leaf)
        assert np.array_equal(
            flat.predict_class(x, backend="native"), want_cls
        )
        # leaf_values routes through apply, so proba vectors (and any
        # normalization of them) are bit-identical too.
        assert np.array_equal(
            flat.leaf_values(x, backend="native"), want_val
        )
        assert flat.backend_stats["native_rows"] > 0
        assert flat.backend_stats["fallback_rows"] == 0

    def test_wide_matrix_strides(self, fitted):
        # n_feat is a runtime argument, not baked in: a matrix wider
        # than the tree's feature span must index identically.
        tree, x = fitted
        flat = fresh_flat(tree)
        wide = np.hstack([x, np.full((x.shape[0], 3), 99.0)])
        assert np.array_equal(
            flat.apply(wide, backend="native"),
            flat.apply(wide, backend="numpy"),
        )

    def test_deep_chain_tree(self):
        flat = _chain_flat(2000)
        assert flat.max_depth > native.DENSE_DEPTH_LIMIT
        x = np.linspace(-5.0, 2005.0, 256).reshape(-1, 1)
        want = flat.apply(x, backend="numpy")
        got = _chain_flat(2000).apply(x, backend="native")
        assert np.array_equal(got, want)

    def test_single_leaf_short_circuits(self):
        flat = FlatTree(
            feature=np.array([-1], dtype=np.intp),
            threshold=np.zeros(1),
            children_left=np.array([-1], dtype=np.intp),
            children_right=np.array([-1], dtype=np.intp),
            value=np.array([[0.25, 0.75]]),
            n_samples=np.ones(1),
            impurity=np.zeros(1),
        )
        x = np.zeros((10, 3))
        assert np.array_equal(flat.apply(x, backend="native"), np.zeros(10))
        # A root-only tree never goes native (nothing to compile) and
        # that is not a fallback — it is the whole answer.
        assert flat.backend_stats["numpy_rows"] == 10
        assert flat.backend_stats["fallback_rows"] == 0

    def test_regressor_values(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(-1, 1, (400, 4))
        y = np.where(x[:, 0] > 0, x[:, 1], -x[:, 1])
        tree = DecisionTreeRegressor(max_leaf_nodes=32).fit(x, y)
        flat = fresh_flat(tree)
        assert np.array_equal(
            flat.leaf_values(x, backend="native"),
            flat.leaf_values(x, backend="numpy"),
        )

    def test_env_var_forces_native(self, fitted, monkeypatch):
        tree, x = fitted
        monkeypatch.setenv("REPRO_TREE_BACKEND", "native")
        flat = fresh_flat(tree)
        want = fresh_flat(tree).apply(x, backend="numpy")
        assert np.array_equal(flat.apply(x), want)
        assert flat.backend_stats["native_rows"] == x.shape[0]

    def test_auto_skips_compile_for_small_batches(self, fitted):
        tree, x = fitted
        flat = fresh_flat(tree)
        flat.apply(x[:16])  # auto, tiny batch: not worth a compile
        assert flat.backend_stats == {
            "native_rows": 0, "numpy_rows": 16, "fallback_rows": 0,
        }
        assert native.native_stats().get("compiles", 0) == 0


@needs_cc
class TestCache:
    """Content-hash cache: hits, healing, eviction, concurrency."""

    def test_cache_hit_after_compile(self, fitted, kernel_cache):
        tree, _ = fitted
        assert native.ensure_kernel(fresh_flat(tree)) is not None
        assert native.ensure_kernel(fresh_flat(tree)) is not None
        stats = native.native_stats()
        assert stats["compiles"] == 1
        assert stats["cache_hits"] == 1
        khash = native.kernel_hash(tree.flat)
        # The compile leaves full provenance next to the binary.
        assert (kernel_cache / f"{khash}.so").exists()
        assert (kernel_cache / f"{khash}.c").exists()
        assert (kernel_cache / f"{khash}.json").exists()

    def test_corrupt_so_heals_by_recompile(self, fitted, kernel_cache):
        tree, x = fitted
        khash = native.kernel_hash(tree.flat)
        kernel_cache.mkdir(parents=True, exist_ok=True)
        (kernel_cache / f"{khash}.so").write_bytes(b"not an ELF")
        flat = fresh_flat(tree)
        want = fresh_flat(tree).apply(x, backend="numpy")
        assert np.array_equal(flat.apply(x, backend="native"), want)
        stats = native.native_stats()
        assert stats["load_failures"] >= 1  # the corrupt entry
        assert stats["compiles"] == 1       # the heal
        assert flat.backend_stats["fallback_rows"] == 0

    def test_corrupt_so_without_compiler_falls_back(
        self, fitted, kernel_cache, monkeypatch
    ):
        tree, x = fitted
        khash = native.kernel_hash(tree.flat)
        kernel_cache.mkdir(parents=True, exist_ok=True)
        (kernel_cache / f"{khash}.so").write_bytes(b"not an ELF")
        monkeypatch.setattr(native, "find_compiler", lambda: None)
        flat = fresh_flat(tree)
        want = fresh_flat(tree).apply(x, backend="numpy")
        assert np.array_equal(flat.apply(x, backend="native"), want)
        assert flat.backend_stats["fallback_rows"] == x.shape[0]
        assert native.native_stats()["compile_failures"] >= 1

    def test_lru_eviction_keeps_newest(self, kernel_cache, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_LIMIT", "2")
        rng = np.random.default_rng(9)
        x = rng.uniform(0, 1, (200, 3))
        hashes = []
        for leaves in (2, 4, 8):
            y = (x[:, 0] > rng.uniform(0.3, 0.7)).astype(int)
            tree = DecisionTreeClassifier(max_leaf_nodes=leaves).fit(x, y)
            assert native.ensure_kernel(tree.flat) is not None
            hashes.append(native.kernel_hash(tree.flat))
        assert len(set(hashes)) == 3
        survivors = {p.stem for p in kernel_cache.glob("*.so")}
        assert len(survivors) == 2
        assert hashes[0] not in survivors  # oldest got evicted
        # Sidecars go with the binary: no orphaned .c / .json.
        for suffix in (".c", ".json"):
            assert {p.stem for p in kernel_cache.glob(f"*{suffix}")} \
                == survivors

    def test_concurrent_compiles_all_load(self, fitted):
        tree, x = fitted
        flats = [fresh_flat(tree) for _ in range(4)]
        kernels = [None] * 4
        barrier = threading.Barrier(4)

        def worker(i):
            barrier.wait()
            kernels[i] = native.ensure_kernel(flats[i])

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        want = fresh_flat(tree).apply(x, backend="numpy")
        for kernel in kernels:
            assert kernel is not None
            assert np.array_equal(kernel.apply(x), want)

    def test_install_kernel_bytes_round_trip(self, fitted):
        # The cluster ships raw .so bytes; installing them must produce
        # a loadable, hash-verified kernel on the receiving host.
        tree, x = fitted
        flat = fresh_flat(tree)
        khash = native.kernel_hash(flat)
        native.compile_kernel(flat, khash)
        blob = native.kernel_bytes(khash)
        assert blob is not None and len(blob) > 0
        (native.cache_dir() / f"{khash}.so").unlink()
        native.install_kernel_bytes(khash, blob)
        kernel = native.ensure_kernel(flat, compile=False)
        assert kernel is not None
        assert np.array_equal(
            kernel.apply(x), fresh_flat(tree).apply(x, backend="numpy")
        )


class TestFallback:
    """No compiler anywhere: serving must not notice."""

    def test_forced_native_degrades_with_counters(
        self, fitted, monkeypatch
    ):
        tree, x = fitted
        monkeypatch.setattr(native, "find_compiler", lambda: None)
        flat = fresh_flat(tree)
        want = fresh_flat(tree).apply(x, backend="numpy")
        assert np.array_equal(flat.apply(x, backend="native"), want)
        assert flat.backend_stats["fallback_rows"] == x.shape[0]
        stats = native.native_stats()
        assert stats["compile_failures"] == 1
        assert stats["fallback_rows"] == x.shape[0]
        assert "compiler" in stats["last_error"]
        # The failure is remembered: the second batch costs no re-probe
        # and still lands on numpy.
        flat.apply(x, backend="native")
        assert native.native_stats()["compile_failures"] == 1

    def test_kernel_call_failure_disables_native(self, fitted):
        tree, x = fitted

        class Bomb:
            def apply(self, x):
                raise RuntimeError("boom")

            predict_class = apply

        flat = fresh_flat(tree)
        flat.attach_kernel(Bomb())
        want = fresh_flat(tree).apply(x, backend="numpy")
        # First call survives the mid-batch explosion...
        assert np.array_equal(flat.apply(x, backend="native"), want)
        # ...and native stays off for this tree afterwards.
        assert flat._native is None and flat._native_failed
        assert native.native_stats()["load_failures"] >= 1


def _fresh_artifact(tree) -> PolicyArtifact:
    """An artifact over a *fresh* flat copy — publishes in one test must
    not leak attached kernels or failure flags into the next (the
    module-scoped tree's own FlatTree is shared)."""
    return PolicyArtifact.from_flat(
        fresh_flat(tree), name="toy", kind="tree-classifier",
        n_features=int(tree.n_features),
    )


class TestServeIntegration:
    """Publish-time compilation, provenance, and the backend report."""

    @needs_cc
    def test_publish_compiles_and_records_provenance(self, fitted):
        tree, _ = fitted
        registry = ModelRegistry()
        art = _fresh_artifact(tree)
        registry.publish("toy", art)
        kernel_meta = art.meta["kernel"]
        assert kernel_meta["status"] == "ready"
        assert kernel_meta["hash"] == native.kernel_hash(tree.flat)
        assert kernel_meta["compiler"]
        assert "-O2" in kernel_meta["flags"]
        assert kernel_meta["kernel_api"] == native.KERNEL_API

    def test_publish_respects_numpy_mode(self, fitted, monkeypatch):
        tree, _ = fitted
        monkeypatch.setenv("REPRO_TREE_BACKEND", "numpy")
        art = _fresh_artifact(tree)
        ModelRegistry().publish("toy", art)
        assert art.meta["kernel"] == {"status": "disabled"}
        assert native.native_stats().get("compiles", 0) == 0

    def test_publish_without_compiler_serves_numpy(
        self, fitted, monkeypatch
    ):
        tree, x = fitted
        monkeypatch.setattr(native, "find_compiler", lambda: None)
        registry = ModelRegistry()
        art = _fresh_artifact(tree)
        registry.publish("toy", art)  # must not raise
        assert art.meta["kernel"]["status"] == "unavailable"
        assert "compiler" in art.meta["kernel"]["error"]
        assert np.array_equal(art.predict_batch(x), tree.predict(x))
        report = registry_backend_report(registry)
        assert report["toy"]["backend"] == "numpy-fallback"

    @needs_cc
    def test_server_backend_report(self, fitted):
        tree, x = fitted
        with PolicyServer(max_batch=64, max_delay_s=1e-4) as server:
            server.publish("toy", _fresh_artifact(tree))
            for row in x[:32]:
                assert server.submit("toy", row).result(10).ok
            report = server.backend_report()
        toy = report["models"]["toy"]
        assert toy["backend"] == "native"
        per_version = toy["versions"]["1"]
        assert per_version["native_rows"] + per_version["numpy_rows"] >= 32
        assert toy["fallback_rows"] == 0
        assert report["native"].get("compiles", 0) >= 1

    def test_teacher_artifacts_are_numpy_only(self):
        registry = ModelRegistry()
        art = PolicyArtifact(
            name="fn", kind="function", n_features=2, n_outputs=2,
            predict_batch=lambda x: np.zeros(x.shape[0], dtype=int),
            content_hash="f" * 16,
        )
        registry.publish("fn", art)
        assert art.backend_stats() is None
        report = registry_backend_report(registry)
        assert report["fn"]["backend"] == "numpy-only"
