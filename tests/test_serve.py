"""Tests for the policy-serving subsystem (artifact/registry/batcher/server)."""

import numpy as np
import pytest

from repro.core.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.core.tree.codegen import compile_python, tree_to_c, tree_to_python
from repro.serve import (
    ModelRegistry,
    PolicyArtifact,
    PolicyServer,
    ServeError,
)


@pytest.fixture(scope="module")
def toy_tree():
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (800, 5))
    y = (x[:, 0] > 0.5).astype(int) * 2 + (x[:, 2] > 0.4).astype(int)
    return DecisionTreeClassifier(max_leaf_nodes=32).fit(x, y), x, y


@pytest.fixture(scope="module")
def single_leaf_tree():
    """Degenerate policy: constant labels grow a root-only tree."""
    rng = np.random.default_rng(1)
    x = rng.uniform(0, 1, (50, 4))
    y = np.full(50, 2, dtype=int)
    tree = DecisionTreeClassifier(n_classes=5, max_leaf_nodes=8).fit(x, y)
    assert tree.n_leaves == 1 and tree.root.is_leaf
    return tree, x


class TestArtifact:
    def test_from_tree_predicts_like_tree(self, toy_tree):
        tree, x, _ = toy_tree
        art = PolicyArtifact.from_tree(tree, name="toy")
        assert art.kind == "tree-classifier"
        assert art.n_features == 5
        assert art.n_outputs == 4
        assert np.array_equal(art.predict_batch(x), tree.predict(x))

    def test_content_hash_is_content_based(self, toy_tree):
        tree, x, y = toy_tree
        a = PolicyArtifact.from_tree(tree, name="a")
        b = PolicyArtifact.from_tree(tree, name="b")
        assert a.content_hash == b.content_hash  # same tree, same hash
        other = DecisionTreeClassifier(max_leaf_nodes=2).fit(x, y)
        c = PolicyArtifact.from_tree(other)
        assert c.content_hash != a.content_hash

    def test_artifact_is_a_snapshot(self, toy_tree):
        """Mutating the source tree must not change a published artifact."""
        tree, x, y = toy_tree
        full = DecisionTreeClassifier(max_leaf_nodes=32).fit(x, y)
        art = PolicyArtifact.from_tree(full, name="snap")
        before = art.predict_batch(x).copy()
        # Collapse the live tree to a single leaf (what pruning-style
        # mutation does) and rebuild its flat engine.
        full.root.feature = -1
        full.root.left = full.root.right = None
        full.invalidate_flat()
        assert full.n_leaves == 1
        assert np.array_equal(art.predict_batch(x), before)

    def test_codegen_source_round_trips(self, toy_tree):
        tree, x, _ = toy_tree
        art = PolicyArtifact.from_tree(tree, name="toy")
        fn = art.compile_single()
        got = np.asarray([fn(row) for row in x[:100]])
        assert np.array_equal(got, tree.predict(x[:100]))

    def test_regressor_artifact(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, (300, 3))
        y = np.stack([x[:, 0] > 0, x[:, 1] * 2.0], axis=1)
        tree = DecisionTreeRegressor(max_leaf_nodes=16).fit(x, y)
        art = PolicyArtifact.from_tree(tree, name="reg")
        assert art.kind == "tree-regressor"
        assert art.source is None
        assert np.allclose(art.predict_batch(x), tree.predict(x))

    def test_from_teacher_wraps_batch_greedy(self):
        from repro.envs.abr.env import STATE_DIM
        from repro.nn.policy import SoftmaxPolicy, ValueNet
        from repro.teachers.pensieve import PensieveTeacher
        from repro.utils.rng import as_rng

        teacher = PensieveTeacher(
            policy=SoftmaxPolicy(STATE_DIM, 6, hidden=(8,), seed=as_rng(0)),
            value=ValueNet(STATE_DIM, seed=as_rng(0)),
        )
        art = PolicyArtifact.from_teacher(teacher, n_features=STATE_DIM)
        states = np.abs(np.random.default_rng(3).normal(size=(20, STATE_DIM)))
        assert np.array_equal(
            art.predict_batch(states), teacher.act_greedy_batch(states)
        )
        # hash sourced from the network weights: perturbing them re-hashes
        before = art.content_hash
        assert art.is_intact()
        teacher.policy.net.params()[0][...] += 1.0
        after = PolicyArtifact.from_teacher(
            teacher, n_features=STATE_DIM
        ).content_hash
        assert after != before
        # teacher artifacts are live-bound: drift is detectable
        assert not art.is_intact() and art.fingerprint() == after

    def test_unfitted_tree_rejected(self):
        with pytest.raises(RuntimeError):
            PolicyArtifact.from_tree(DecisionTreeClassifier())


class TestDegeneratePolicy:
    """Satellite: a root-only tree compiles and serves end to end."""

    def test_codegen_compiles(self, single_leaf_tree):
        tree, x = single_leaf_tree
        c_src = tree_to_c(tree)
        assert "return 2;" in c_src
        py_src = tree_to_python(tree)
        fn = compile_python(tree)
        assert "return 2" in py_src
        assert all(fn(row) == 2 for row in x)

    def test_serves_via_artifact(self, single_leaf_tree):
        tree, x = single_leaf_tree
        art = PolicyArtifact.from_tree(tree, name="leaf")
        assert art.meta["n_leaves"] == 1 and art.meta["depth"] == 0
        assert art.compile_single()(x[0]) == 2
        with PolicyServer(max_batch=8, max_delay_s=1e-4) as server:
            server.publish("leaf", art)
            results = [f.result(timeout=10)
                       for f in server.submit_many("leaf", x)]
            assert all(r.ok and r.action == 2 for r in results)


class TestRegistry:
    def _artifact(self, tag: int) -> PolicyArtifact:
        return PolicyArtifact(
            name=f"a{tag}", kind="function", n_features=2, n_outputs=2,
            predict_batch=lambda x, t=tag: np.full(x.shape[0], t),
            content_hash=f"{tag:016x}",
        )

    def test_publish_versions_and_resolve(self):
        reg = ModelRegistry()
        assert reg.publish("m", self._artifact(0)) == 1
        assert reg.publish("m", self._artifact(1)) == 2
        latest = reg.resolve("m")
        assert (latest.name, latest.version) == ("m", 2)
        pinned = reg.resolve("m@1")
        assert pinned.version == 1 and pinned.artifact.content_hash.endswith("0")
        assert reg.latest_version("m") == 2
        assert "m" in reg and "m@2" in reg and "m@3" not in reg

    def test_aliases_track_latest_or_pin(self):
        reg = ModelRegistry()
        reg.publish("m", self._artifact(0))
        reg.alias("m/prod", "m")
        reg.alias("m/pinned", "m", version=1)
        reg.publish("m", self._artifact(1))
        assert reg.resolve("m/prod").version == 2
        assert reg.resolve("m/pinned").version == 1

    def test_bad_references(self):
        reg = ModelRegistry()
        with pytest.raises(KeyError):
            reg.resolve("missing")
        reg.publish("m", self._artifact(0))
        with pytest.raises(KeyError):
            reg.resolve("m@7")
        with pytest.raises(KeyError):
            reg.resolve("m@latest")
        with pytest.raises(ValueError):
            reg.publish("bad@name", self._artifact(0))
        with pytest.raises(KeyError):
            reg.alias("x", "missing")
        reg.alias("m/prod", "m")
        with pytest.raises(ValueError):
            reg.publish("m/prod", self._artifact(1))


class TestRegistryRetire:
    """Satellite: retire() frees old versions without shifting numbers."""

    def _artifact(self, tag: int) -> PolicyArtifact:
        return PolicyArtifact(
            name=f"a{tag}", kind="function", n_features=2, n_outputs=2,
            predict_batch=lambda x, t=tag: np.full(x.shape[0], t),
            content_hash=f"{tag:016x}",
        )

    def test_retire_tombstones_without_renumbering(self):
        reg = ModelRegistry()
        for tag in range(3):
            reg.publish("m", self._artifact(tag))
        reg.retire("m", 1)
        assert reg.live_versions("m") == [2, 3]
        assert reg.latest_version("m") == 3  # numbering is stable
        with pytest.raises(KeyError, match="retired"):
            reg.resolve("m@1")
        assert "m@1" not in reg
        # untouched versions keep serving, and publish keeps counting
        assert reg.resolve("m@2").version == 2
        assert reg.publish("m", self._artifact(9)) == 4
        # resolve_many maps the retired ref to None like any bad ref
        assert reg.resolve_many(["m@1", "m@2"])["m@1"] is None

    def test_refuses_latest(self):
        reg = ModelRegistry()
        reg.publish("m", self._artifact(0))
        reg.publish("m", self._artifact(1))
        with pytest.raises(ValueError, match="latest"):
            reg.retire("m", 2)
        reg.retire("m", 1)  # non-latest is fine

    def test_refuses_alias_backed_version(self):
        reg = ModelRegistry()
        reg.publish("m", self._artifact(0))
        reg.publish("m", self._artifact(1))
        reg.publish("m", self._artifact(2))
        reg.alias("m/pinned", "m", version=1)
        reg.alias("m/prod", "m")  # tracking latest: no pin on v2
        with pytest.raises(ValueError, match="m/pinned"):
            reg.retire("m", 1)
        reg.retire("m", 2)  # only pinned aliases block retirement

    def test_bad_retire_references(self):
        reg = ModelRegistry()
        reg.publish("m", self._artifact(0))
        reg.publish("m", self._artifact(1))
        with pytest.raises(KeyError):
            reg.retire("ghost", 1)
        with pytest.raises(KeyError):
            reg.retire("m", 7)
        reg.alias("m/prod", "m")
        with pytest.raises(ValueError, match="alias"):
            reg.retire("m/prod", 1)
        reg.retire("m", 1)
        with pytest.raises(KeyError, match="retired"):
            reg.retire("m", 1)  # double retire
        with pytest.raises(KeyError, match="retired"):
            reg.alias("m/old", "m", version=1)  # no aliasing a tombstone

    def test_server_passthrough(self, toy_tree):
        tree, x, _ = toy_tree
        with PolicyServer(max_batch=8, max_delay_s=1e-4) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            server.publish("toy", PolicyArtifact.from_tree(tree))
            server.retire("toy", 1)
            gone = server.submit("toy@1", x[0]).result(10)
            ok = server.submit("toy", x[0]).result(10)
        assert (gone.ok, gone.error) == (False, "unknown_model")
        assert ok.ok and ok.version == 2


class TestRollbackPublish:
    """Crash-consistency helper for replicated publishes."""

    def _artifact(self, tag: int) -> PolicyArtifact:
        return PolicyArtifact(
            name=f"a{tag}", kind="function", n_features=2, n_outputs=2,
            predict_batch=lambda x, t=tag: np.full(x.shape[0], t),
            content_hash=f"{tag:016x}",
        )

    def test_rolls_back_only_the_latest(self):
        reg = ModelRegistry()
        reg.publish("m", self._artifact(0))
        reg.publish("m", self._artifact(1))
        with pytest.raises(ValueError, match="latest"):
            reg.rollback_publish("m", 1)  # not the latest
        reg.rollback_publish("m", 2)
        assert reg.latest_version("m") == 1
        # the number is reusable — replicas must agree on numbering
        assert reg.publish("m", self._artifact(2)) == 2
        assert reg.resolve("m@2").artifact.content_hash.endswith("2")

    def test_first_publish_rollback_removes_the_model(self):
        reg = ModelRegistry()
        reg.publish("m", self._artifact(0))
        reg.alias("m/prod", "m")
        reg.rollback_publish("m", 1)
        assert "m" not in reg and "m/prod" not in reg
        assert reg.names() == [] and reg.aliases() == {}

    def test_all_tombstone_rollback_removes_the_model(self):
        """retire v1 then roll back v2: nothing servable remains, so
        the model must vanish rather than advertise only tombstones."""
        reg = ModelRegistry()
        reg.publish("m", self._artifact(0))
        reg.publish("m", self._artifact(1))
        reg.alias("m/prod", "m")
        reg.retire("m", 1)
        reg.rollback_publish("m", 2)
        assert "m" not in reg and "m/prod" not in reg
        assert reg.names() == []
        with pytest.raises(KeyError):
            reg.latest_version("m")
        # the name is fully reusable afterwards
        assert reg.publish("m", self._artifact(5)) == 1

    def test_refuses_when_pinned(self):
        reg = ModelRegistry()
        reg.publish("m", self._artifact(0))
        reg.alias("m/pin", "m", version=1)
        with pytest.raises(ValueError, match="pin"):
            reg.rollback_publish("m", 1)

    def test_trailing_tombstone_does_not_break_latest(self):
        """Rollback after a retire can leave a tombstone in the last
        slot; bare-name (and tracking-alias) traffic must keep flowing
        to the newest *live* version."""
        reg = ModelRegistry()
        reg.publish("m", self._artifact(0))
        reg.publish("m", self._artifact(1))
        reg.publish("m", self._artifact(2))
        reg.alias("m/prod", "m")
        reg.retire("m", 2)          # legal: not latest
        reg.rollback_publish("m", 3)  # failed replicated publish
        # versions are now [v1, tombstone]; latest live is v1
        assert reg.resolve("m").version == 1
        assert reg.resolve("m/prod").version == 1
        assert reg.resolve_many(["m"])["m"].version == 1
        assert reg.latest_version("m") == 1  # agrees with resolve
        # explicit pin at the tombstone still reports retirement
        with pytest.raises(KeyError, match="retired"):
            reg.resolve("m@2")
        # and the retire guard protects the *effective* latest: v1 is
        # what bare-name traffic serves, so it must refuse to go
        with pytest.raises(ValueError, match="latest"):
            reg.retire("m", 1)


class TestResolveMany:
    """Satellite: resolve_many edge cases the batcher's flush relies on."""

    def _artifact(self, tag: int) -> PolicyArtifact:
        return PolicyArtifact(
            name=f"a{tag}", kind="function", n_features=2, n_outputs=2,
            predict_batch=lambda x, t=tag: np.full(x.shape[0], t),
            content_hash=f"{tag:016x}",
        )

    def test_duplicate_refs_resolve_to_one_version(self):
        """Canonical name, @latest pin, and alias all land on the same
        ResolvedModel in one critical section — one flush, one group."""
        reg = ModelRegistry()
        reg.publish("m", self._artifact(0))
        reg.publish("m", self._artifact(1))
        reg.alias("m/prod", "m")
        out = reg.resolve_many(["m", "m@2", "m/prod", "m", "m/prod"])
        # dict semantics: each distinct ref resolved exactly once
        assert set(out) == {"m", "m@2", "m/prod"}
        triples = {
            (r.name, r.version, r.artifact.content_hash)
            for r in out.values()
        }
        assert triples == {("m", 2, self._artifact(1).content_hash)}

    def test_alias_pinned_version(self):
        reg = ModelRegistry()
        reg.publish("m", self._artifact(0))
        reg.alias("m/pinned", "m", version=1)
        reg.publish("m", self._artifact(1))
        out = reg.resolve_many(["m/pinned", "m"])
        assert out["m/pinned"].version == 1
        assert out["m"].version == 2
        # the pinned alias resolves to the old artifact, not the latest
        assert out["m/pinned"].artifact.content_hash == (
            self._artifact(0).content_hash
        )

    def test_unknown_refs_map_to_none_with_clear_messages(self):
        reg = ModelRegistry()
        reg.publish("m", self._artifact(0))
        out = reg.resolve_many(["m", "ghost", "m@9", "m@latest"])
        assert out["m"] is not None
        assert out["ghost"] is None
        assert out["m@9"] is None
        assert out["m@latest"] is None
        # the single-ref path spells out why each one failed
        with pytest.raises(KeyError, match="unknown model 'ghost'"):
            reg.resolve("ghost")
        with pytest.raises(KeyError, match="versions 1..1, not 9"):
            reg.resolve("m@9")
        with pytest.raises(KeyError, match="bad version"):
            reg.resolve("m@latest")


class TestServerBoundary:
    """Satellite: mis-shaped / non-finite states fail structurally."""

    def test_invalid_states_get_structured_errors(self, toy_tree):
        tree, x, _ = toy_tree
        with PolicyServer(max_batch=16, max_delay_s=1e-4) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            nan_res = server.submit("toy", np.full(5, np.nan)).result(10)
            inf_res = server.submit(
                "toy", [1.0, 2.0, np.inf, 0.0, 0.0]
            ).result(10)
            shape_res = server.submit("toy", np.ones(3)).result(10)
            text_res = server.submit("toy", ["a", "b", "c", "d", "e"]).result(10)
            missing = server.submit("ghost", x[0]).result(10)
            # the batcher thread survived: valid traffic still flows
            ok = server.submit("toy", x[0]).result(10)
            metrics = server.metrics()
        assert (nan_res.ok, nan_res.error) == (False, "non_finite")
        assert (inf_res.ok, inf_res.error) == (False, "non_finite")
        assert (shape_res.ok, shape_res.error) == (False, "bad_shape")
        assert text_res.error in ("bad_input", "bad_shape")
        assert (missing.ok, missing.error) == (False, "unknown_model")
        assert ok.ok and ok.action == tree.predict(x[:1])[0]
        toy = metrics["toy"]
        assert toy["errors"] == 4
        assert toy["error_kinds"]["non_finite"] == 2
        assert metrics["ghost"]["error_kinds"] == {"unknown_model": 1}

    def test_poisoned_request_does_not_fail_batchmates(self, toy_tree):
        """A NaN request co-batched with valid ones fails alone."""
        tree, x, _ = toy_tree
        with PolicyServer(max_batch=32, max_delay_s=50e-3) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            good = [server.submit("toy", row) for row in x[:8]]
            bad = server.submit("toy", np.full(5, np.nan))
            good += [server.submit("toy", row) for row in x[8:16]]
            results = [f.result(timeout=10) for f in good]
            bad_res = bad.result(timeout=10)
        assert all(r.ok for r in results)
        assert np.array_equal(
            [r.action for r in results], tree.predict(x[:16])
        )
        assert bad_res.error == "non_finite"

    def test_raising_artifact_fails_batch_not_thread(self, toy_tree):
        tree, x, _ = toy_tree

        def boom(states):
            raise RuntimeError("kaboom")

        broken = PolicyArtifact(
            name="broken", kind="function", n_features=5, n_outputs=2,
            predict_batch=boom, content_hash="0" * 16,
        )
        with PolicyServer(max_batch=8, max_delay_s=1e-4) as server:
            server.publish("broken", broken)
            server.publish("toy", PolicyArtifact.from_tree(tree))
            res = server.submit("broken", x[0]).result(timeout=10)
            ok = server.submit("toy", x[0]).result(timeout=10)
        assert (res.ok, res.error) == (False, "predict_error")
        assert "kaboom" in res.detail
        assert ok.ok

    def test_wrong_output_cardinality_is_structural(self, toy_tree):
        _, x, _ = toy_tree
        art = PolicyArtifact(
            name="short", kind="function", n_features=5, n_outputs=2,
            predict_batch=lambda s: np.zeros(s.shape[0] + 1),
            content_hash="1" * 16,
        )
        with PolicyServer(max_batch=4, max_delay_s=1e-4) as server:
            server.publish("short", art)
            res = server.submit("short", x[0]).result(timeout=10)
        assert (res.ok, res.error) == (False, "bad_output")


class TestServer:
    def test_predict_matches_tree(self, toy_tree):
        tree, x, _ = toy_tree
        with PolicyServer(max_batch=32, max_delay_s=1e-3) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree),
                           alias="toy/prod")
            out = server.predict("toy/prod", x[:200])
        assert np.array_equal(out, tree.predict(x[:200]))

    def test_predict_raises_on_error(self, toy_tree):
        tree, _, _ = toy_tree
        with PolicyServer(max_batch=8, max_delay_s=1e-4) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            with pytest.raises(ServeError):
                server.predict("toy", np.full((3, 5), np.nan))

    def test_microbatching_coalesces(self, toy_tree):
        tree, x, _ = toy_tree
        with PolicyServer(max_batch=64, max_delay_s=20e-3) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            futures = server.submit_many("toy", x[:64])
            for f in futures:
                assert f.result(timeout=10).ok
            sizes = server.metrics()["toy"]["batch_sizes"]
        assert max(sizes) > 1  # at least one multi-request flush

    def test_alias_and_canonical_cobatch_one_version(self, toy_tree):
        """Mixed references to one model coalesce into a single predict
        and resolve to a single version per flush."""
        tree, x, _ = toy_tree
        with PolicyServer(max_batch=64, max_delay_s=30e-3) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree),
                           alias="toy/prod")
            futures = [
                server.submit("toy" if i % 2 else "toy/prod", x[i])
                for i in range(16)
            ]
            results = [f.result(timeout=10) for f in futures]
            sizes = server.metrics()["toy"]["batch_sizes"]
        assert all(
            r.ok and r.model == "toy" and r.version == 1 for r in results
        )
        assert max(sizes) == 16  # both refs answered by one flush group

    def test_metrics_shape(self, toy_tree):
        tree, x, _ = toy_tree
        with PolicyServer(max_batch=16, max_delay_s=1e-4) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            server.predict("toy", x[:50])
            stats = server.metrics()["toy"]
        assert stats["requests"] == 50 and stats["errors"] == 0
        assert stats["versions"] == {1: 50}
        lat = stats["latency_ms"]
        assert 0 <= lat["p50"] <= lat["p95"] <= lat["p99"]
        assert stats["throughput_rps"] > 0
        assert sum(k * v for k, v in stats["batch_sizes"].items()) == 50

    def test_single_flush_throughput_is_nonzero(self, toy_tree):
        """A workload served in one flush still reports real throughput
        (span is anchored at the first request's arrival)."""
        tree, x, _ = toy_tree
        with PolicyServer(max_batch=64, max_delay_s=10e-3) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            server.predict("toy", x[:64])
            stats = server.metrics()["toy"]
        assert stats["batch_sizes"] == {64: 1}  # genuinely one flush
        assert stats["throughput_rps"] > 0

    def test_idle_gaps_do_not_deflate_throughput(self, toy_tree):
        """Throughput divides by busy time, not burst spacing."""
        import time as _time

        tree, x, _ = toy_tree
        with PolicyServer(max_batch=64, max_delay_s=1e-3) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            server.predict("toy", x[:32])
            burst_rps = server.metrics()["toy"]["throughput_rps"]
            _time.sleep(0.25)  # idle gap between bursts
            server.predict("toy", x[:32])
            stats = server.metrics()["toy"]
        assert stats["requests"] == 64
        # 64 requests over >=0.25s of wall clock would be < 256 rps if
        # the gap counted; busy-time throughput stays burst-scale.
        assert stats["throughput_rps"] > 0.5 * burst_rps

    def test_close_completes_pending_and_rejects_new(self, toy_tree):
        tree, x, _ = toy_tree
        server = PolicyServer(max_batch=8, max_delay_s=1e-3)
        server.publish("toy", PolicyArtifact.from_tree(tree))
        futures = server.submit_many("toy", x[:40])
        server.close()
        results = [f.result(timeout=10) for f in futures]
        assert all(r.ok for r in results)  # zero dropped futures
        with pytest.raises(RuntimeError):
            server.submit("toy", x[0])

    def test_submit_and_predict_after_close_raise_immediately(
        self, toy_tree
    ):
        """Satellite bugfix guard: a closed batcher must reject new work
        with a clear RuntimeError, never enqueue an unresolvable future
        or hang until the predict timeout."""
        import time as _time

        tree, x, _ = toy_tree
        server = PolicyServer(max_batch=8, max_delay_s=1e-3)
        server.publish("toy", PolicyArtifact.from_tree(tree))
        server.close()
        with pytest.raises(RuntimeError, match="close"):
            server.submit("toy", x[0])
        start = _time.perf_counter()
        with pytest.raises(RuntimeError, match="close"):
            server.predict("toy", x[:4], timeout_s=30.0)
        # the guard fired immediately, not via the 30s result timeout
        assert _time.perf_counter() - start < 1.0
        with pytest.raises(RuntimeError, match="close"):
            server.submit_many("toy", x[:4])


class TestServingLatencyReport:
    """deploy/latency.py measured mode sources from live server metrics."""

    def test_measured_rows_next_to_modeled(self, toy_tree):
        from repro.deploy import serving_latency_report
        from repro.nn.mlp import MLP

        tree, x, _ = toy_tree
        net = MLP(5, (16,), 4, seed=0)
        with PolicyServer(max_batch=16, max_delay_s=1e-4) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            server.predict("toy", x[:64])
            rows = serving_latency_report(server, "toy", tree=tree, net=net)
        assert [r["source"] for r in rows] == [
            "measured", "modeled", "modeled", "modeled"
        ]
        measured = rows[0]
        assert measured["requests"] == 64
        assert 0 < measured["p50_ms"] <= measured["p99_ms"]
        assert measured["throughput_rps"] > 0
        labels = {r["model"] for r in rows[1:]}
        assert labels == {"server-dnn", "server-tree", "smartnic-tree"}
        with pytest.raises(KeyError):
            serving_latency_report(server, "missing")


class TestAtomicWeightCache:
    """Satellite: save_weights writes via temp file + os.replace."""

    def test_roundtrip_and_no_stray_tmp(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.teachers.cache import load_weights, save_weights

        arrays = [np.arange(5.0), np.ones((2, 3))]
        path = save_weights("unit-atomic", arrays)
        assert path.exists() and path.name == "unit-atomic.npz"
        loaded = load_weights("unit-atomic")
        for a, b in zip(arrays, loaded):
            assert np.array_equal(a, b)
        # overwrite in place (the concurrent-reader scenario)
        save_weights("unit-atomic", [np.zeros(4)])
        assert np.array_equal(load_weights("unit-atomic")[0], np.zeros(4))
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".npz"]
        assert leftovers == []

    def test_failed_write_leaves_no_artifacts(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.teachers.cache import load_weights, save_weights

        class Boom:
            def __array__(self, dtype=None, copy=None):
                raise RuntimeError("not array-convertible")

        with pytest.raises(RuntimeError):
            save_weights("unit-bad", [Boom()])
        assert load_weights("unit-bad") is None
        assert list(tmp_path.glob("*.tmp")) == []
