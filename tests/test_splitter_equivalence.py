"""Property-style equivalence: the presorted split engine must grow
bit-for-bit the same trees as the legacy per-node re-sorting engine.

Mirrors ``tests/test_flat_equivalence.py``: the legacy exact splitter
(``splitter="legacy"``, the seed's ``_best_split`` algorithm) is kept in
``repro.core.tree.splitter`` exactly for this role — random
classification and multi-output regression problems, weighted and
unweighted, must produce identical structure, thresholds, leaf values,
node weights, and impurities.  The histogram splitter is approximate by
design, so it only gets sanity coverage (budget, accuracy, edge cases).

Also holds the regression test for the degenerate-midpoint bug: the
seed's ``0.5 * (cs[p] + cs[p+1])`` threshold can round down to
``cs[p]`` for adjacent floats, silently producing an empty child.
"""

import numpy as np
import pytest

from repro.core.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    SPLITTERS,
    safe_midpoint,
)

SEEDS = [0, 1, 2, 3, 4]


def _flat_arrays(tree):
    flat = tree.flat
    return {
        "feature": flat.feature,
        "threshold": flat.threshold,
        "children_left": flat.children_left,
        "children_right": flat.children_right,
        "value": flat.value,
        "n_samples": flat.n_samples,
        "impurity": flat.impurity,
    }


def _assert_identical_trees(a, b):
    fa, fb = _flat_arrays(a), _flat_arrays(b)
    assert fa["feature"].size == fb["feature"].size
    for key in fa:
        # Bit-for-bit: thresholds, values, impurities — not just close.
        assert np.array_equal(fa[key], fb[key]), f"{key} differs"


def _classification_problem(seed, n=500, n_features=6):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, n_features))
    y = (
        (x[:, 0] > 0).astype(int) * 2
        + (x[:, 1] * x[:, 2] > 0.1).astype(int)
        + (x[:, 3] > 0.5).astype(int)
    )
    return rng, x, y


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("weighted", [False, True])
def test_classifier_presorted_matches_legacy(seed, weighted):
    rng, x, y = _classification_problem(seed)
    w = rng.uniform(0.1, 5.0, size=x.shape[0]) if weighted else None
    legacy = DecisionTreeClassifier(max_leaf_nodes=64, splitter="legacy")
    presorted = DecisionTreeClassifier(max_leaf_nodes=64, splitter="presorted")
    _assert_identical_trees(
        legacy.fit(x, y, sample_weight=w),
        presorted.fit(x, y, sample_weight=w),
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("weighted", [False, True])
def test_regressor_presorted_matches_legacy(seed, weighted):
    rng = np.random.default_rng(100 + seed)
    x = rng.normal(size=(400, 5))
    y = np.stack(
        [np.sin(x[:, 0]), x[:, 1] * x[:, 2], np.abs(x[:, 3])], axis=1
    )
    w = rng.uniform(0.05, 2.0, size=400) if weighted else None
    legacy = DecisionTreeRegressor(max_leaf_nodes=48, splitter="legacy")
    presorted = DecisionTreeRegressor(max_leaf_nodes=48, splitter="presorted")
    _assert_identical_trees(
        legacy.fit(x, y, sample_weight=w),
        presorted.fit(x, y, sample_weight=w),
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_duplicated_values_tie_handling(seed):
    """Heavy value duplication stresses the stable-partition ordering:
    equal feature values must keep ascending-row tie order in both
    engines for the prefix statistics to match."""
    rng = np.random.default_rng(200 + seed)
    x = np.round(rng.normal(size=(400, 4)), 1)  # many exact duplicates
    y = ((x[:, 0] > 0) * 2 + (x[:, 1] > 0.2)).astype(int)
    w = rng.uniform(0.5, 1.5, size=400)
    legacy = DecisionTreeClassifier(max_leaf_nodes=32, splitter="legacy")
    presorted = DecisionTreeClassifier(max_leaf_nodes=32, splitter="presorted")
    _assert_identical_trees(
        legacy.fit(x, y, sample_weight=w),
        presorted.fit(x, y, sample_weight=w),
    )


def test_presorted_respects_constraints(toy_classification):
    x, y = toy_classification
    tree = DecisionTreeClassifier(
        max_leaf_nodes=200, min_samples_leaf=50, splitter="presorted"
    ).fit(x, y)
    for node in tree.iter_nodes():
        if node.is_leaf:
            assert node.n_samples >= 50
    deep = DecisionTreeClassifier(
        max_leaf_nodes=64, max_depth=2, splitter="presorted"
    ).fit(x, y)
    assert deep.depth <= 2


# ----------------------------------------------------------------------
# histogram splitter (approximate by design: sanity, not bit-equality)
# ----------------------------------------------------------------------
def test_hist_solves_axis_aligned(toy_classification):
    # Bin edges are quantiles, so the exact class boundary may fall
    # strictly inside a bin: near-perfect, not perfect, is the contract.
    x, y = toy_classification
    tree = DecisionTreeClassifier(max_leaf_nodes=8, splitter="hist").fit(x, y)
    assert (tree.predict(x) == y).mean() > 0.98


def test_hist_respects_leaf_budget(toy_classification):
    x, y = toy_classification
    tree = DecisionTreeClassifier(max_leaf_nodes=3, splitter="hist").fit(x, y)
    assert tree.n_leaves <= 3


def test_hist_min_samples_leaf(toy_classification):
    x, y = toy_classification
    tree = DecisionTreeClassifier(
        max_leaf_nodes=200, min_samples_leaf=50, splitter="hist"
    ).fit(x, y)
    for node in tree.iter_nodes():
        if node.is_leaf:
            assert node.n_samples >= 50


def test_hist_regression_close_to_exact():
    rng = np.random.default_rng(5)
    x = rng.uniform(-2, 2, size=(2000, 4))
    y = np.stack([np.sign(x[:, 0]), (x[:, 1] > 0.3).astype(float)], axis=1)
    exact = DecisionTreeRegressor(max_leaf_nodes=32).fit(x, y)
    hist = DecisionTreeRegressor(max_leaf_nodes=32, splitter="hist").fit(x, y)
    rmse_exact = np.sqrt(((exact.predict(x) - y) ** 2).mean())
    rmse_hist = np.sqrt(((hist.predict(x) - y) ** 2).mean())
    assert rmse_hist <= rmse_exact + 0.05


def test_hist_weighted_fit_steers_predictions(toy_classification):
    x, y = toy_classification
    w = np.where(y == 3, 1000.0, 0.001)
    tree = DecisionTreeClassifier(max_leaf_nodes=2, splitter="hist").fit(
        x, y, sample_weight=w
    )
    assert (tree.predict(x) == 3).mean() > 0.4


def test_hist_constant_features_yield_stump():
    x = np.ones((50, 3))
    y = np.array([0, 1] * 25)
    tree = DecisionTreeClassifier(max_leaf_nodes=10, splitter="hist").fit(x, y)
    assert tree.n_leaves == 1


def test_hist_bins_floor_validated():
    with pytest.raises(ValueError, match="bins"):
        DecisionTreeClassifier(splitter="hist", hist_bins=1).fit(
            np.zeros((4, 1)), np.array([0, 1, 0, 1])
        )


def test_unknown_splitter_rejected():
    with pytest.raises(ValueError, match="splitter"):
        DecisionTreeClassifier(splitter="bogus")
    assert set(SPLITTERS) == {"legacy", "presorted", "hist"}


# ----------------------------------------------------------------------
# degenerate-midpoint regression (the satellite bugfix)
# ----------------------------------------------------------------------
def test_safe_midpoint_adjacent_floats():
    lo, hi = 1.0, np.nextafter(1.0, 2.0)
    assert 0.5 * (lo + hi) == lo  # the original bug's precondition
    mid = safe_midpoint(lo, hi)
    assert lo < mid <= hi


def test_safe_midpoint_huge_values_do_not_overflow():
    # 0.5 * (lo + hi) would overflow the sum to inf and send every
    # sample left; the halved-operand form must stay finite.
    lo, hi = 9e307, 1.2e308
    assert lo + hi == np.inf
    mid = safe_midpoint(lo, hi)
    assert np.isfinite(mid)
    assert lo < mid <= hi


@pytest.mark.parametrize("splitter", ["legacy", "presorted"])
def test_adjacent_float_split_keeps_children_nonempty(splitter):
    """``0.5 * (a + b)`` rounds down to ``a`` for adjacent floats; the
    seed then produced an empty left child (every row failed
    ``x < a``).  Both exact engines must realize the measured split."""
    hi = np.nextafter(1.0, 2.0)
    x = np.array([[1.0], [1.0], [hi], [hi]])
    y = np.array([0, 0, 1, 1])
    tree = DecisionTreeClassifier(
        max_leaf_nodes=2, min_samples_leaf=1, splitter=splitter
    ).fit(x, y)
    assert not tree.root.is_leaf
    assert tree.root.left.n_samples == 2
    assert tree.root.right.n_samples == 2
    assert np.array_equal(tree.predict(x), y)
