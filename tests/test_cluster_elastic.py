"""Tests for the elastic cluster tier: load-aware routing, shard
autoscaling, and self-healing control-log replay."""

import threading
import time

import numpy as np
import pytest

from repro.core.tree import DecisionTreeClassifier
from repro.serve import PolicyArtifact, PolicyServer
from repro.serve.cluster import (
    AutoscaleConfig,
    LeastLoadedRouter,
    RoundRobinRouter,
    Router,
    ShardedPolicyService,
    make_router,
)
from repro.serve.cluster.autoscale import AutoscaleSignals, decide
from repro.serve.loadgen import (
    SyntheticCost,
    hot_key_states,
    run_load,
    synthetic_artifact,
)


@pytest.fixture(scope="module")
def toy():
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (800, 5))
    y = (x[:, 0] > 0.5).astype(int) * 2 + (x[:, 2] > 0.4).astype(int)
    tree = DecisionTreeClassifier(max_leaf_nodes=32).fit(x, y)
    return tree, x


@pytest.fixture(params=["pipe", "socket"])
def transport(request):
    """The elastic-tier guarantees (lockstep replay, byte-identical
    heal) must hold over both worker transports."""
    return request.param


def _wait_live(svc, count, timeout_s=20.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if svc.cluster_metrics()["live_shards"] == count:
            return True
        time.sleep(0.05)
    return False


def _assert_replicas_identical(svc):
    states = svc.replica_states()
    parent = repr(states["parent"])
    for shard_id, state in states["shards"].items():
        assert repr(state) == parent, (
            f"shard {shard_id} diverged from the parent mirror:\n"
            f"{state}\nvs\n{states['parent']}"
        )
    return states


class _Fake:
    def __init__(self, inflight, ewma, by_model=None):
        self.inflight = inflight
        self.ewma_service_s = ewma
        if by_model is not None:
            self.ewma_by_model = by_model


class TestRouters:
    def test_least_loaded_prefers_smallest_drain_time(self):
        router = LeastLoadedRouter()
        idle = _Fake(0, 1e-3)
        busy = _Fake(6, 1e-3)
        assert router.select([busy, idle]) is idle
        # a slow shard loses even with less in flight
        slow = _Fake(1, 10e-3)
        fast = _Fake(3, 1e-3)
        assert router.select([slow, fast]) is fast

    def test_fresh_shard_competes_at_fleet_baseline(self):
        """A shard with no service history must not score 0 (it would
        swallow every group of a burst before its first reply)."""
        router = LeastLoadedRouter()
        seasoned = _Fake(0, 2e-3)
        fresh = _Fake(5, 0.0)  # cold but piled up
        assert router.select([seasoned, fresh]) is seasoned

    def test_per_model_estimate_beats_aggregate(self):
        """A shard whose *aggregate* EWMA is polluted by an expensive
        model must still win traffic for a model it serves quickly."""
        router = LeastLoadedRouter()
        # Shard A mostly serves the expensive model: aggregate looks
        # slow, but "cheap" is fast there.
        a = _Fake(2, 50e-3, by_model={"cheap": 1e-3, "pricey": 80e-3})
        b = _Fake(2, 5e-3, by_model={"cheap": 4e-3})
        assert router.select([a, b], ref="cheap") is a
        # aggregate-only routing would have picked b
        assert router.select([a, b]) is b

    def test_unseen_model_falls_back_to_aggregate(self):
        router = LeastLoadedRouter()
        a = _Fake(3, 2e-3, by_model={"other": 2e-3})
        b = _Fake(3, 9e-3, by_model={"other": 9e-3})
        # neither shard has seen "new": their aggregates decide
        assert router.select([a, b], ref="new") is a

    def test_attribute_only_doubles_still_work(self):
        """Routers must read shard handles via getattr — external
        callers (and these tests) pass plain objects without the
        per-model dict."""
        router = LeastLoadedRouter()
        lean = _Fake(0, 1e-3)
        deep = _Fake(6, 1e-3)
        assert router.select([deep, lean], ref="anything") is lean

    def test_idle_ties_spread_round_robin(self):
        router = LeastLoadedRouter()
        a, b = _Fake(0, 1e-3), _Fake(0, 1e-3)
        picks = {id(router.select([a, b])) for _ in range(4)}
        assert len(picks) == 2

    def test_round_robin_rotates(self):
        router = RoundRobinRouter()
        a, b, c = _Fake(0, 0), _Fake(9, 1), _Fake(3, 1)
        assert [router.select([a, b, c]) for _ in range(4)] == [a, b, c, a]

    def test_make_router_specs(self):
        assert isinstance(make_router("round_robin"), RoundRobinRouter)
        assert isinstance(make_router("least_loaded"), LeastLoadedRouter)
        assert isinstance(make_router("hash"), LeastLoadedRouter)
        custom = LeastLoadedRouter()
        assert make_router(custom) is custom
        with pytest.raises(ValueError, match="routing"):
            make_router("fastest")

    def test_custom_router_instance_plugs_in(self, toy):
        tree, x = toy

        class FirstShardRouter(Router):
            name = "first"

            def select(self, shards):
                return shards[0] if shards else None

        with ShardedPolicyService(
            n_shards=2, routing=FirstShardRouter(), max_delay_s=1e-3
        ) as svc:
            svc.publish("toy", PolicyArtifact.from_tree(tree))
            results = [svc.submit("toy", row).result(30) for row in x[:20]]
            assert all(r.ok for r in results)
            served = [
                shard["models"].get("toy", {}).get("requests", 0)
                for shard in svc.cluster_metrics()["shards"]
            ]
            assert sorted(served) == [0, 20]


class TestAutoscaleDecide:
    CFG = AutoscaleConfig(
        min_shards=1, max_shards=4, scale_up_fill=0.75,
        scale_down_fill=0.15, queue_high_per_shard=64,
        slo_p95_ms=50.0, idle_ticks_down=8,
    )

    def test_below_min_scales_up(self):
        delta, reason = decide(
            self.CFG, AutoscaleSignals(live_shards=0)
        )
        assert delta == 1 and "min_shards" in reason

    def test_saturated_fill_scales_up(self):
        delta, _ = decide(self.CFG, AutoscaleSignals(
            live_shards=2, fill=0.9,
        ))
        assert delta == 1

    def test_queue_depth_scales_up_without_fill(self):
        delta, reason = decide(self.CFG, AutoscaleSignals(
            live_shards=2, fill=None, queue_depth=200,
        ))
        assert delta == 1 and "queue depth" in reason

    def test_slo_violation_scales_up(self):
        delta, reason = decide(self.CFG, AutoscaleSignals(
            live_shards=2, fill=0.3, p95_ms=80.0,
        ))
        assert delta == 1 and "SLO" in reason

    def test_at_max_never_scales_up(self):
        delta, _ = decide(self.CFG, AutoscaleSignals(
            live_shards=4, fill=1.0, queue_depth=10_000, p95_ms=500.0,
        ))
        assert delta == 0

    def test_persistent_idle_scales_down(self):
        delta, reason = decide(self.CFG, AutoscaleSignals(
            live_shards=3, fill=0.9, idle_ticks=8,
        ))
        # idle beats a stale fill estimate: no flushes are updating it
        assert delta == -1 and "idle" in reason

    def test_low_fill_with_empty_backlog_scales_down(self):
        delta, _ = decide(self.CFG, AutoscaleSignals(
            live_shards=3, fill=0.05, p95_ms=10.0,
        ))
        assert delta == -1

    def test_low_fill_with_backlog_holds(self):
        delta, _ = decide(self.CFG, AutoscaleSignals(
            live_shards=3, fill=0.05, inflight=4, p95_ms=10.0,
        ))
        assert delta == 0

    def test_at_min_never_scales_down(self):
        delta, _ = decide(self.CFG, AutoscaleSignals(
            live_shards=1, fill=0.0, idle_ticks=100,
        ))
        assert delta == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(min_shards=0)
        with pytest.raises(ValueError):
            AutoscaleConfig(min_shards=3, max_shards=2)
        with pytest.raises(ValueError):
            AutoscaleConfig(scale_up_fill=0.2, scale_down_fill=0.5)
        with pytest.raises(ValueError, match="p95_window_s"):
            AutoscaleConfig(p95_window_s=0.0)
        with pytest.raises(ValueError, match="p95_window_s"):
            AutoscaleConfig(p95_window_s=-5.0)
        # None (full-ring reading) and positive windows are both legal
        assert AutoscaleConfig(p95_window_s=None).p95_window_s is None
        assert AutoscaleConfig(p95_window_s=10.0).p95_window_s == 10.0


class TestWindowedP95:
    """The SLO signal's sliding time window (ServerMetrics.p95_ms)."""

    def test_window_forgets_old_spike(self):
        from repro.serve.server import ServerMetrics

        metrics = ServerMetrics()
        # an old cold-start spike...
        for _ in range(20):
            metrics.record("m", 1, 0.500)
        # ...then make those samples old by aging their timestamps
        with metrics._lock:
            stats = metrics._models["m"]
            stats.recent = type(stats.recent)(
                ((ts - 60.0, lat) for ts, lat in stats.recent),
                maxlen=stats.recent.maxlen,
            )
        for _ in range(20):
            metrics.record("m", 1, 0.002)
        # the unwindowed reading still sees the spike; a 30s window
        # only sees current traffic
        assert metrics.p95_ms() > 100.0
        assert metrics.p95_ms(window_s=30.0) < 10.0

    def test_empty_window_reads_zero(self):
        from repro.serve.server import ServerMetrics

        metrics = ServerMetrics()
        metrics.record("m", 1, 0.010)
        with metrics._lock:
            stats = metrics._models["m"]
            stats.recent = type(stats.recent)(
                ((ts - 60.0, lat) for ts, lat in stats.recent),
                maxlen=stats.recent.maxlen,
            )
        assert metrics.p95_ms() > 0.0
        assert metrics.p95_ms(window_s=1.0) == 0.0

    def test_autoscaler_passes_window_to_signals(self, toy):
        tree, _ = toy
        config = AutoscaleConfig(slo_p95_ms=50.0, p95_window_s=5.0,
                                 interval_s=0.05)
        with ShardedPolicyService(
            n_shards=1, autoscale=config, max_delay_s=1e-3,
        ) as svc:
            svc.publish("toy", PolicyArtifact.from_tree(tree))
            raw = svc._autoscale_signals(want_p95=True, p95_window_s=5.0)
            assert raw is not None and raw["p95_ms"] >= 0.0


class TestElasticScaling:
    def test_add_shard_replays_full_state(self, toy, transport):
        tree, x = toy
        artifact = PolicyArtifact.from_tree(tree, name="m")
        with ShardedPolicyService(n_shards=1, split_seed=0,
                                  transport=transport) as svc:
            svc.publish("m", artifact, alias="m/prod")
            svc.publish("m", artifact)
            svc.set_split("m/prod", canary="m@2", canary_fraction=0.25)
            new_id = svc.add_shard()
            assert new_id == 1
            assert svc.cluster_metrics()["live_shards"] == 2
            _assert_replicas_identical(svc)
            # the new replica serves (route enough groups that both
            # shards see traffic)
            out = svc.predict("m@2", x[:64])
            assert np.array_equal(out, tree.predict(x[:64]))

    def test_remove_shard_drains_gracefully(self, toy):
        tree, x = toy
        with ShardedPolicyService(n_shards=3) as svc:
            svc.publish("toy", PolicyArtifact.from_tree(tree))
            removed = svc.remove_shard()
            view = svc.cluster_metrics()
            assert view["live_shards"] == 2 and view["n_shards"] == 2
            assert removed not in {
                shard["shard"] for shard in view["shards"]
            }
            results = [svc.submit("toy", row).result(30) for row in x[:16]]
            assert all(r.ok for r in results)
            with pytest.raises(KeyError):
                svc.remove_shard(removed)

    def test_remove_refuses_last_shard(self, toy):
        tree, _ = toy
        with ShardedPolicyService(n_shards=1) as svc:
            svc.publish("toy", PolicyArtifact.from_tree(tree))
            with pytest.raises(RuntimeError, match="last live shard"):
                svc.remove_shard()

    def test_autoscaler_scales_up_under_load_and_down_when_idle(self, toy):
        tree, x = toy
        config = AutoscaleConfig(
            min_shards=1, max_shards=3, interval_s=0.05, cooldown_s=0.25,
            scale_up_fill=0.35, scale_down_fill=0.1, idle_ticks_down=4,
        )
        with ShardedPolicyService(
            n_shards=1, adaptive_delay=True, max_batch=16,
            max_delay_s=1e-3, autoscale=config,
        ) as svc:
            svc.publish("toy", PolicyArtifact.from_tree(tree))
            run_load(svc, "toy", x[:400], n_clients=16, repeats=6)
            # generous deadlines: this is a wall-clock control loop,
            # and contended single-core CI boxes stretch every phase
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if svc.autoscaler.scale_ups >= 1:
                    break
                run_load(svc, "toy", x[:400], n_clients=16, repeats=2)
            snap = svc.autoscaler.snapshot()
            assert snap["scale_ups"] >= 1, f"never scaled up: {snap}"
            # scaled replicas are in lockstep too
            _assert_replicas_identical(svc)
            # idle long enough and capacity returns to min_shards
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if svc.cluster_metrics()["live_shards"] == 1:
                    break
                time.sleep(0.1)
            assert svc.cluster_metrics()["live_shards"] == 1, (
                f"never scaled back down: {svc.autoscaler.snapshot()}"
            )
            assert svc.autoscaler.scale_downs >= 1
            events = svc.scale_events()
            assert {e["action"] for e in events} == {"up", "down"}
            assert all(e["reason"] for e in events)


class TestSelfHealing:
    def test_killed_shard_is_replaced_with_identical_state(
        self, toy, transport
    ):
        """The resilient-republish headline: kill a shard under an
        active canary/shadow split and live traffic; the replacement
        must replay to byte-identical control state, and no future may
        be dropped (every submitted future resolves — ok or a
        structured shard_error, never a hang)."""
        tree, x = toy
        artifact = PolicyArtifact.from_tree(tree, name="m")
        with ShardedPolicyService(
            n_shards=2, self_heal=True, split_seed=7, max_delay_s=1e-3,
            transport=transport,
        ) as svc:
            svc.publish("m", artifact, alias="m/prod")
            svc.publish("m", artifact)
            svc.set_split("m/prod", canary="m@2", canary_fraction=0.3,
                          shadow="m@2")
            # second model through the pickle transport path
            svc.publish("syn", synthetic_artifact("syn", 1e-5,
                                                  n_features=5))
            before = _assert_replicas_identical(svc)

            futures = []
            stop = threading.Event()

            def pump():
                while not stop.is_set():
                    futures.append(svc.submit("m/prod", x[0]))
                    time.sleep(0.001)

            pumper = threading.Thread(target=pump, daemon=True)
            pumper.start()
            time.sleep(0.05)
            victim = svc._shards[0].shard_id
            svc.kill_shard(victim)
            assert _wait_live(svc, 2), "replacement never came up"
            time.sleep(0.1)
            stop.set()
            pumper.join(timeout=10)

            # zero dropped futures: every one resolves
            results = [f.result(timeout=30) for f in futures]
            assert len(results) == len(futures)
            ok = [r for r in results if r.ok]
            failed = [r for r in results if not r.ok]
            assert ok, "no request survived the kill window"
            assert all(r.error == "shard_error" for r in failed)
            # versions attribute to the published artifacts only
            assert {r.version for r in ok} <= {1, 2}

            # the replacement replayed to byte-identical control state
            after = _assert_replicas_identical(svc)
            assert repr(after["parent"]) == repr(before["parent"])
            assert victim not in after["shards"]
            # and it serves the same decisions
            out = svc.predict("m", x[:64])
            assert np.array_equal(out, tree.predict(x[:64]))
            assert svc.predict("syn", x[:8, :5]).shape == (8,)

    def test_retired_versions_replay_as_tombstones(self, toy, transport):
        tree, x = toy
        artifact = PolicyArtifact.from_tree(tree, name="m")
        with ShardedPolicyService(n_shards=2, self_heal=True,
                                  transport=transport) as svc:
            svc.publish("m", artifact)
            svc.publish("m", artifact)
            svc.publish("m", artifact)
            svc.retire("m", 2)
            victim = svc._shards[1].shard_id
            svc.kill_shard(victim)
            assert _wait_live(svc, 2), "replacement never came up"
            states = _assert_replicas_identical(svc)
            hashes = states["parent"]["models"]["m"]
            assert hashes[1] is None and hashes[0] == hashes[2]
            # numbering is stable on the replacement: @2 stays retired,
            # @3 still serves
            gone = svc.submit("m@2", x[0]).result(30)
            assert (gone.ok, gone.error) == (False, "unknown_model")
            assert svc.submit("m@3", x[0]).result(30).ok

    def test_publish_after_heal_stays_in_lockstep(self, toy):
        tree, x = toy
        artifact = PolicyArtifact.from_tree(tree, name="m")
        with ShardedPolicyService(n_shards=2, self_heal=True) as svc:
            svc.publish("m", artifact)
            svc.kill_shard(svc._shards[0].shard_id)
            assert _wait_live(svc, 2)
            # the healed fleet accepts new control ops as one
            assert svc.publish("m", artifact) == 2
            svc.alias("m/prod", "m", version=2)
            _assert_replicas_identical(svc)
            assert np.array_equal(
                svc.predict("m/prod", x[:16]), tree.predict(x[:16])
            )

    def test_no_self_heal_without_optin(self, toy):
        tree, _ = toy
        with ShardedPolicyService(n_shards=2) as svc:
            svc.publish("toy", PolicyArtifact.from_tree(tree))
            svc.kill_shard(svc._shards[0].shard_id)
            deadline = time.monotonic() + 3.0
            while time.monotonic() < deadline:
                if svc.cluster_metrics()["live_shards"] == 1:
                    break
                time.sleep(0.05)
            time.sleep(0.3)  # give a hypothetical healer time to act
            assert svc.cluster_metrics()["live_shards"] == 1


class TestWarmupMeasurement:
    def test_warmup_requests_excluded_from_report(self, toy):
        tree, x = toy
        with PolicyServer(max_batch=32, max_delay_s=5e-4) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            report = run_load(
                server, "toy", x[:120], n_clients=4, warmup=10,
            )
            # the report counts only measured requests...
            assert report.n_requests == 120
            assert report.n_errors == 0
            # ...while the server actually served warmup ones on top
            assert server._metrics.total_requests() == 120 + 4 * 10

    def test_warmup_validation(self, toy):
        tree, x = toy
        with PolicyServer() as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            with pytest.raises(ValueError, match="warmup"):
                run_load(server, "toy", x[:8], warmup=-1)


class TestLoadShapes:
    def test_hot_key_states_skew_and_determinism(self, toy):
        _, x = toy
        rows = hot_key_states(x, n_rows=1000, hot_fraction=0.9, seed=3)
        assert rows.shape == (1000, x.shape[1])
        uniques, counts = np.unique(rows, axis=0, return_counts=True)
        assert counts.max() >= 900  # the hot key dominates
        again = hot_key_states(x, n_rows=1000, hot_fraction=0.9, seed=3)
        assert np.array_equal(rows, again)
        with pytest.raises(ValueError, match="hot_fraction"):
            hot_key_states(x, hot_fraction=1.5)

    def test_bursty_async_load_counts_every_row(self, toy):
        """burst>1 fires chunks concurrently per round; every row must
        be submitted exactly once (including a final partial burst)."""
        from repro.serve.loadgen import run_load_async

        tree, x = toy
        with PolicyServer(max_batch=32, max_delay_s=5e-4) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            # 110 rows over 4 clients -> 27/28 per client: not
            # divisible by burst*chunk, so the last round is partial
            report = run_load_async(
                server, "toy", x[:110], n_clients=4, repeats=2,
                burst=3, burst_pause_s=1e-4, warmup=2,
            )
            assert report.n_requests == 220
            assert report.n_errors == 0
            assert report.versions == {1: 220}
        with PolicyServer() as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            with pytest.raises(ValueError, match="burst"):
                run_load_async(server, "toy", x[:8], burst=0)

    def test_synthetic_cost_spins_and_pickles(self):
        import pickle

        cost = SyntheticCost(n_features=4, per_call_s=5e-3)
        start = time.perf_counter()
        out = cost(np.ones((3, 4)))
        assert time.perf_counter() - start >= 5e-3
        assert out.shape == (3,)
        clone = pickle.loads(pickle.dumps(cost))
        assert clone.per_call_s == cost.per_call_s
        art = synthetic_artifact("syn", 5e-3, n_features=4)
        twin = synthetic_artifact("other", 5e-3, n_features=4)
        assert art.content_hash == twin.content_hash
        assert art.flat is None  # ships via the pickle transport
