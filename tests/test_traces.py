"""Tests for the synthetic bandwidth trace generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.envs.traces import (
    BandwidthTrace,
    fcc_like_trace,
    fixed_trace,
    hsdpa_like_trace,
    trace_set,
)


class TestBandwidthTrace:
    def test_wraps_around(self):
        trace = BandwidthTrace(np.array([1.0, 2.0, 3.0]))
        assert trace.bandwidth_at(4.5) == 2.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BandwidthTrace(np.array([]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BandwidthTrace(np.array([1.0, 0.0]))

    def test_mean(self):
        assert BandwidthTrace(np.array([1.0, 3.0])).mean_kbps() == 2.0


class TestFixedTrace:
    def test_constant(self):
        trace = fixed_trace(3000.0, duration_s=10)
        assert np.all(trace.bandwidths_kbps == 3000.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fixed_trace(0.0)


class TestGenerators:
    @pytest.mark.parametrize("maker,lo,hi", [
        (hsdpa_like_trace, 80.0, 6500.0),
        (fcc_like_trace, 200.0, 9500.0),
    ])
    def test_within_declared_bounds(self, maker, lo, hi):
        trace = maker(duration_s=300, seed=0)
        assert trace.bandwidths_kbps.min() >= lo
        assert trace.bandwidths_kbps.max() <= hi

    def test_deterministic_per_seed(self):
        a = hsdpa_like_trace(seed=5)
        b = hsdpa_like_trace(seed=5)
        assert np.array_equal(a.bandwidths_kbps, b.bandwidths_kbps)

    def test_different_seeds_differ(self):
        a = hsdpa_like_trace(seed=5)
        b = hsdpa_like_trace(seed=6)
        assert not np.array_equal(a.bandwidths_kbps, b.bandwidths_kbps)

    def test_hsdpa_autocorrelated(self):
        # Cellular traces must be temporally smooth: lag-1 autocorrelation
        # well above zero.
        trace = hsdpa_like_trace(duration_s=300, seed=1)
        x = trace.bandwidths_kbps
        r = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert r > 0.5

    def test_trace_set_count_and_names(self):
        traces = trace_set("fcc", 5, seed=0)
        assert len(traces) == 5
        assert len({t.name for t in traces}) == 5

    def test_trace_set_unknown_kind(self):
        with pytest.raises(ValueError):
            trace_set("dialup", 3)

    def test_trace_set_reproducible(self):
        a = trace_set("hsdpa", 3, seed=9)
        b = trace_set("hsdpa", 3, seed=9)
        for x, y in zip(a, b):
            assert np.array_equal(x.bandwidths_kbps, y.bandwidths_kbps)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_fcc_positive_property(self, seed):
        trace = fcc_like_trace(duration_s=50, seed=seed)
        assert np.all(trace.bandwidths_kbps > 0)
