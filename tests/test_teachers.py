"""Tests for the teacher systems (tiny training budgets)."""

import numpy as np
import pytest

from repro.envs.abr import ABREnv, Video
from repro.envs.flows import MLFQConfig
from repro.envs.routing import gravity_demands, nsfnet
from repro.envs.routing.delay import routing_latencies, shortest_path_routing
from repro.envs.traces import trace_set
from repro.teachers.auto import (
    AutoTeacher,
    LRLA_FEATURE_NAMES,
    LRLA_STATE_DIM,
    SRLA_FEATURE_NAMES,
    SRLA_STATE_DIM,
    collect_auto_dataset,
    sjf_priority,
    srla_state,
    train_auto,
)
from repro.teachers.cache import load_weights, recipe_key, save_weights
from repro.teachers.pensieve import (
    PensieveTeacher,
    STATE_SCALE,
    default_abr_env,
    train_pensieve,
)
from repro.teachers.routenet import RouteNetStar, train_routenet


@pytest.fixture(scope="module")
def mini_abr_env():
    video = Video.synthetic(n_chunks=10, seed=3)
    traces = trace_set("hsdpa", 3, duration_s=100, seed=4)
    return ABREnv(video, traces)


class TestCache:
    def test_recipe_key_stable(self):
        assert recipe_key("x", {"a": 1}) == recipe_key("x", {"a": 1})

    def test_recipe_key_differs(self):
        assert recipe_key("x", {"a": 1}) != recipe_key("x", {"a": 2})

    def test_save_load_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        arrays = [np.arange(3.0), np.eye(2)]
        save_weights("unit-test-key", arrays)
        loaded = load_weights("unit-test-key")
        assert all(np.array_equal(a, b) for a, b in zip(arrays, loaded))

    def test_load_missing_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert load_weights("nope") is None


class TestPensieveTeacher:
    def test_training_smoke(self, mini_abr_env):
        teacher = train_pensieve(
            mini_abr_env, episodes=20, seed=0, use_cache=False
        )
        assert isinstance(teacher, PensieveTeacher)
        assert teacher.n_actions == 6

    def test_probabilities_shape(self, mini_abr_env):
        teacher = train_pensieve(
            mini_abr_env, episodes=5, seed=0, use_cache=False
        )
        state = mini_abr_env.reset(rng=0)
        probs = teacher.action_probabilities(state[None, :])
        assert probs.shape == (1, 6)
        assert probs.sum() == pytest.approx(1.0)

    def test_modified_structure_has_skip(self, mini_abr_env):
        teacher = train_pensieve(
            mini_abr_env, episodes=5, seed=0, modified=True, use_cache=False
        )
        assert teacher.policy.net.skip_features == [0]

    def test_state_scale_covers_all_features(self):
        assert STATE_SCALE.shape == (25,)
        assert np.all(STATE_SCALE > 0)

    def test_fit_q_enables_q_values(self, mini_abr_env):
        teacher = train_pensieve(
            mini_abr_env, episodes=5, seed=0, use_cache=False
        )
        with pytest.raises(RuntimeError):
            teacher.q_values(np.zeros((1, 25)))
        teacher.fit_q(mini_abr_env, episodes=2, seed=1)
        q = teacher.q_values(np.zeros((2, 25)))
        assert q.shape == (2, 6)

    def test_cache_roundtrip(self, mini_abr_env, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        a = train_pensieve(mini_abr_env, episodes=5, seed=0, use_cache=True)
        b = train_pensieve(mini_abr_env, episodes=5, seed=0, use_cache=True)
        state = mini_abr_env.reset(rng=0)[None, :]
        assert np.allclose(
            a.action_probabilities(state), b.action_probabilities(state)
        )

    def test_default_env_constructor(self):
        env = default_abr_env(n_traces=3, n_chunks=8)
        assert env.video.n_chunks == 8
        assert len(env.traces) == 3


class TestAutoTeacher:
    def test_feature_names_match_dims(self):
        assert len(LRLA_FEATURE_NAMES) == LRLA_STATE_DIM
        assert len(SRLA_FEATURE_NAMES) == SRLA_STATE_DIM

    def test_srla_state_shape(self):
        state = srla_state([], load=0.7, capacity_bps=1e9)
        assert state.shape == (SRLA_STATE_DIM,)

    def test_sjf_rule_monotone_in_size(self):
        small = np.zeros(LRLA_STATE_DIM)
        small[0] = 6.0
        big = np.zeros(LRLA_STATE_DIM)
        big[0] = 9.0
        assert sjf_priority(big) >= sjf_priority(small)

    def test_training_smoke(self):
        teacher = train_auto(episodes=5, use_cache=False, seed=0)
        assert isinstance(teacher, AutoTeacher)

    def test_decision_fn_returns_valid_priority(self):
        teacher = train_auto(episodes=5, use_cache=False, seed=0)
        from repro.envs.flows.simulator import FabricSnapshot
        from repro.envs.flows.workloads import Flow

        snapshot = FabricSnapshot(
            time=0.0,
            queue_counts=np.zeros(5),
            queue_remaining_bytes=np.zeros(5),
            flow_bytes_sent=0.0,
            flow_size_bytes=2e6,
        )
        fn = teacher.lrla_decision_fn(greedy=True)
        priority = fn(Flow(0, 0.0, 2e6), snapshot)
        assert 0 <= priority < 5

    def test_srla_thresholds_valid(self):
        teacher = train_auto(episodes=5, use_cache=False, seed=0)
        state = srla_state([], load=0.7, capacity_bps=1e9)
        config = teacher.srla_thresholds(state)
        assert isinstance(config, MLFQConfig)

    def test_dataset_collection(self):
        teacher = train_auto(episodes=5, use_cache=False, seed=0)
        ls, la, lr, ss, sa = collect_auto_dataset(teacher, windows=3, seed=1)
        assert ls.shape[1] == LRLA_STATE_DIM
        assert ss.shape[1] == SRLA_STATE_DIM
        assert sa.shape[1] == 4


class TestRouteNetStar:
    @pytest.fixture(scope="class")
    def setup(self):
        topo = nsfnet()
        tms = gravity_demands(topo, utilization=0.5, seed=9, count=4)
        net = train_routenet(
            topo, tms[:2], epochs=1500, use_cache=False, seed=0
        )
        return topo, tms, net

    def test_prediction_correlates_with_truth(self, setup):
        topo, tms, net = setup
        from repro.teachers.routenet import build_features

        routing = shortest_path_routing(topo)
        xv, xe, inc, pairs = build_features(topo, routing, tms[3])
        pred, _ = net.forward(xv, xe, inc)
        truth = routing_latencies(topo, routing, tms[3])
        y = np.array([truth[p] for p in pairs])
        assert np.corrcoef(pred, y)[0, 1] > 0.5

    def test_optimizer_improves_latency(self, setup):
        topo, tms, net = setup
        star = RouteNetStar(topo, net)
        base = shortest_path_routing(topo)
        optimized = star.optimize(tms[3], sweeps=2, seed=0)
        lat_base = np.mean(list(routing_latencies(topo, base, tms[3]).values()))
        lat_opt = np.mean(
            list(routing_latencies(topo, optimized, tms[3]).values())
        )
        assert lat_opt < lat_base

    def test_decision_distribution_normalized(self, setup):
        topo, tms, net = setup
        star = RouteNetStar(topo, net)
        routing = star.optimize(tms[3], sweeps=1, seed=0)
        dist = star.decision_distribution(routing, tms[3])
        for probs in dist.values():
            assert probs.sum() == pytest.approx(1.0)
