"""Tests for the cluster wire protocol (repro.serve.cluster.wire).

The codec is the single point every transport shares, so it gets the
heaviest scrutiny in the tier: property-based round-trips over the
typed value space (the replica-lockstep guarantees depend on values
surviving the wire *exactly* — tuple vs list, dict order, float bits),
plus frame-level header validation.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.cluster.shm import SharedArraySpec, ShmArtifactHandle
from repro.serve.cluster.wire import (
    HEADER_SIZE,
    KIND_REQUEST,
    OPS,
    WIRE_MAGIC,
    WIRE_VERSION,
    WIRE_VERSION_MIN,
    Reply,
    Request,
    WireArtifact,
    WireError,
    decode_frame,
    decode_value,
    encode_reply,
    encode_request,
    encode_value,
    frame_size,
    parse_header,
)


def wire_equal(a, b) -> bool:
    """Structural equality that distinguishes what the wire must:
    container types, dict order, NaN, and ndarray payloads."""
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        return (list(a.keys()) == list(b.keys())
                and all(wire_equal(a[k], b[k]) for k in a))
    if isinstance(a, (list, tuple)):
        return (len(a) == len(b)
                and all(wire_equal(x, y) for x, y in zip(a, b)))
    if isinstance(a, np.ndarray):
        return (a.dtype == b.dtype and a.shape == b.shape
                and np.array_equal(a, b, equal_nan=(a.dtype.kind == "f")))
    if isinstance(a, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


# Scalars whose round-trip must be exact (no ndarray here: hypothesis
# shrinking plus array equality gets its own strategy below).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 80), max_value=2 ** 80),  # incl. bigint
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=64),
    st.binary(max_size=64),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)


class TestValueCodec:
    @settings(max_examples=200, deadline=None)
    @given(values)
    def test_roundtrip_property(self, value):
        assert wire_equal(decode_value(encode_value(value)), value)

    def test_distinguishes_tuple_from_list(self):
        assert decode_value(encode_value((1, 2))) == (1, 2)
        assert isinstance(decode_value(encode_value((1, 2))), tuple)
        assert isinstance(decode_value(encode_value([1, 2])), list)

    def test_preserves_dict_insertion_order(self):
        d = {"z": 1, "a": 2, "m": 3}
        assert list(decode_value(encode_value(d)).keys()) == ["z", "a", "m"]

    @pytest.mark.parametrize("dtype", ["float64", "float32", "int64",
                                       "int32", "uint8", "bool"])
    def test_ndarray_roundtrip(self, dtype):
        rng = np.random.default_rng(7)
        arr = (rng.uniform(-5, 5, (3, 4)) * 10).astype(dtype)
        back = decode_value(encode_value(arr))
        assert isinstance(back, np.ndarray)
        assert back.dtype == arr.dtype and back.shape == arr.shape
        assert np.array_equal(back, arr)

    def test_zero_dim_and_empty_ndarray(self):
        for arr in (np.float64(3.5) * np.ones(()), np.empty((0, 4))):
            back = decode_value(encode_value(np.asarray(arr)))
            assert back.shape == np.asarray(arr).shape

    def test_numpy_scalars_normalize_to_python(self):
        assert decode_value(encode_value(np.int64(7))) == 7
        assert isinstance(decode_value(encode_value(np.int64(7))), int)
        assert decode_value(encode_value(np.bool_(True))) is True
        assert decode_value(encode_value(np.float32(0.5))) == 0.5

    def test_float_bits_survive(self):
        for x in (0.1 + 0.2, 1e-308, -0.0, float("inf")):
            back = decode_value(encode_value(x))
            assert math.copysign(1, back) == math.copysign(1, x)
            assert back == x or (math.isnan(back) and math.isnan(x))

    def test_shm_handle_roundtrip(self):
        handle = ShmArtifactHandle(
            shm_name="psm_test", name="m", kind="tree_classifier",
            n_features=5, n_outputs=1, content_hash="c" * 16,
            source=None, meta={"depth": 3},
            arrays=(SharedArraySpec("feature", "int32", (7,), 0),),
            total_bytes=28, transport_hash="t" * 16,
        )
        back = decode_value(encode_value(handle))
        assert back == handle

    def test_wire_artifact_roundtrip(self):
        wire = WireArtifact(key="k" * 16, segment="rhc_ab_k",
                            handle=None, payload=b"\x00\x01bytes")
        back = decode_value(encode_value(wire))
        assert (back.key, back.segment, back.handle, back.payload) == (
            wire.key, wire.segment, wire.handle, wire.payload
        )
        assert back.kernel is None  # default: no kernel shipped

    def test_wire_artifact_kernel_bytes_roundtrip(self):
        """Shipped compiled kernels ride the artifact frame verbatim."""
        blob = bytes(range(256)) * 3  # arbitrary binary, NUL included
        wire = WireArtifact(key="k" * 16, segment="rhc_ab_k",
                            handle=None, payload=b"p", kernel=blob)
        back = decode_value(encode_value(wire))
        assert back.kernel == blob
        assert back.payload == b"p"


class TestFrames:
    @pytest.mark.parametrize("op", OPS)
    def test_request_roundtrip_every_op(self, op):
        req = Request(msg_id=42, op=op, payload=("x", 1))
        back = decode_frame(encode_request(req))
        assert isinstance(back, Request)
        assert (back.msg_id, back.op, back.payload) == (42, op, ("x", 1))

    @pytest.mark.parametrize("ok", [True, False])
    def test_reply_roundtrip(self, ok):
        reply = Reply(msg_id=7, ok=ok, payload={"service_s": 0.25})
        back = decode_frame(encode_reply(reply))
        assert isinstance(back, Reply)
        assert (back.msg_id, back.ok, back.payload) == (
            7, ok, {"service_s": 0.25}
        )

    def test_header_carries_length_and_msg_id(self):
        frame = encode_request(Request(99, "ping", None))
        kind, body_len, msg_id = parse_header(frame[:HEADER_SIZE])
        assert kind == KIND_REQUEST
        assert msg_id == 99
        assert frame_size(frame[:HEADER_SIZE]) == len(frame)
        assert len(frame) == HEADER_SIZE + body_len

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_request(Request(1, "ping", None)))
        frame[0:2] = b"XX"
        with pytest.raises(WireError):
            parse_header(bytes(frame[:HEADER_SIZE]))

    def test_bad_version_rejected(self):
        frame = bytearray(encode_request(Request(1, "ping", None)))
        frame[2] = WIRE_VERSION + 1
        with pytest.raises(WireError):
            parse_header(bytes(frame[:HEADER_SIZE]))

    def test_truncated_frame_rejected(self):
        frame = encode_request(Request(1, "describe", None))
        with pytest.raises(WireError):
            decode_frame(frame[:-1])

    def test_trailing_garbage_rejected(self):
        frame = encode_request(Request(1, "describe", None))
        with pytest.raises(WireError):
            decode_frame(frame + b"\x00")

    def test_unknown_op_rejected(self):
        with pytest.raises(WireError):
            encode_request(Request(1, "no_such_op", None))

    def test_magic_is_stable(self):
        # The constant is part of the protocol: changing it (or the
        # version) breaks mixed-version fleets and must be deliberate.
        # v2 added the optional trace field to request frames; v1
        # remains the floor every peer must still decode.
        assert WIRE_MAGIC == b"RW"
        assert WIRE_VERSION == 2
        assert WIRE_VERSION_MIN == 1

    def test_predict_batch_payload(self):
        x = np.arange(12, dtype=float).reshape(3, 4)
        frame = encode_request(Request(5, "predict", ("toy/prod", x)))
        back = decode_frame(frame)
        ref, got = back.payload
        assert ref == "toy/prod"
        assert np.array_equal(got, x) and got.dtype == x.dtype


class TestTraceField:
    """The v2 trace field and its backward-compatibility contract."""

    def test_untraced_request_is_v1_byte_identical(self):
        # A fleet with tracing off must emit the exact bytes a v1 peer
        # expects — the upgrade is invisible until a trace is attached.
        frame = encode_request(Request(7, "predict", ("m", [1.0, 2.0])))
        assert frame[2] == WIRE_VERSION_MIN
        back = decode_frame(frame)
        assert back.trace is None

    def test_reply_is_always_v1(self):
        # Replies never carry a trace (workers return durations in the
        # payload), so they stay decodable by the oldest parent.
        frame = encode_reply(Reply(7, True, {"service_s": 0.1}))
        assert frame[2] == WIRE_VERSION_MIN

    def test_traced_request_roundtrip(self):
        x = np.arange(8, dtype=float).reshape(2, 4)
        trace = {"trace_ids": [3, 11]}
        frame = encode_request(
            Request(9, "predict", ("m", x), trace=trace)
        )
        assert frame[2] == WIRE_VERSION
        back = decode_frame(frame)
        assert back.trace == trace
        ref, got = back.payload
        assert ref == "m" and np.array_equal(got, x)

    @settings(max_examples=50, deadline=None)
    @given(values)
    def test_trace_value_space_roundtrip(self, trace):
        # The trace slot takes any wire value; None means "no trace"
        # and collapses back to a v1 frame.
        frame = encode_request(Request(1, "ping", None, trace=trace))
        back = decode_frame(frame)
        if trace is None:
            assert frame[2] == WIRE_VERSION_MIN and back.trace is None
        else:
            assert frame[2] == WIRE_VERSION
            assert wire_equal(back.trace, trace)

    def test_v1_peer_rejects_traced_frame(self):
        # A v1 peer pins version == 1; the v2 byte must fail its header
        # check loudly instead of being misread as a v1 body.
        frame = encode_request(
            Request(2, "predict", ("m", [0.5]), trace={"trace_ids": [1]})
        )
        assert frame[2] != WIRE_VERSION_MIN  # v1 check would reject

    def test_metrics_snapshot_op_roundtrip(self):
        # The op added for worker metric pulls rides the normal codec.
        frame = encode_request(Request(3, "metrics_snapshot", None))
        back = decode_frame(frame)
        assert back.op == "metrics_snapshot" and back.payload is None
