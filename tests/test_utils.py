"""Tests for repro.utils: RNG plumbing, statistics, result tables."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.stats import (
    RunningStat,
    empirical_cdf,
    pearson_correlation,
    percentile,
)
from repro.utils.tables import ResultTable


class TestAsRng:
    def test_int_seed_deterministic(self):
        assert as_rng(7).random() == as_rng(7).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_deterministic(self):
        x = [r.random() for r in spawn_rngs(3, 4)]
        y = [r.random() for r in spawn_rngs(3, 4)]
        assert x == y

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(1), 3)
        assert len(children) == 3


class TestRunningStat:
    def test_mean(self):
        s = RunningStat()
        s.extend([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)

    def test_variance_matches_numpy(self):
        data = [1.5, 2.5, 0.5, 4.0, -1.0]
        s = RunningStat()
        s.extend(data)
        assert s.variance == pytest.approx(np.var(data, ddof=1))

    def test_single_value_variance_zero(self):
        s = RunningStat()
        s.push(5.0)
        assert s.variance == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_matches_numpy_property(self, data):
        s = RunningStat()
        s.extend(data)
        assert s.mean == pytest.approx(np.mean(data), abs=1e-6)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_returns_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_short_input(self):
        assert pearson_correlation([1.0], [2.0]) == 0.0


class TestEmpiricalCdf:
    def test_sorted_levels(self):
        values, levels = empirical_cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert levels[-1] == pytest.approx(1.0)

    def test_empty(self):
        values, levels = empirical_cdf([])
        assert values.size == 0

    def test_percentile_wrapper(self):
        assert percentile([0, 10], 50) == pytest.approx(5.0)


class TestResultTable:
    def test_render_contains_cells(self):
        t = ResultTable("Demo", ["a", "b"])
        t.add_row(["x", 1.23456])
        out = t.render()
        assert "Demo" in out and "x" in out and "1.235" in out

    def test_row_length_checked(self):
        t = ResultTable("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(["only-one"])

    def test_to_dicts(self):
        t = ResultTable("Demo", ["a", "b"])
        t.add_row([1, 2])
        assert t.to_dicts() == [{"a": "1", "b": "2"}]
