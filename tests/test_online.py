"""The online-loop test layer: chaos, property, and decision-table
proofs for :mod:`repro.serve.online`.

Every promote/rollback story runs on a fake clock — the controller and
monitor are explicit state machines, so no assertion ever sleeps for a
decision.  Wall-clock polling appears only where a real process death
must propagate (the chaos test), never in a decision assertion.
"""

import threading
import types

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import DecisionTreeClassifier
from repro.obs.health import AlertRule, HealthMonitor, standard_rules
from repro.serve import PolicyArtifact, PolicyServer, TrafficSplitter
from repro.serve.online import (
    AutoCanaryController,
    Redistiller,
    RefitResult,
    TraceCapture,
)


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class ThresholdTeacher:
    """Picklable policy: action = 1 iff feature 0 exceeds a threshold
    (publishable via ``PolicyArtifact.from_teacher``)."""

    def __init__(self, threshold: float) -> None:
        self.threshold = threshold

    def act_greedy_batch(self, states: np.ndarray) -> np.ndarray:
        states = np.atleast_2d(np.asarray(states, dtype=float))
        return (states[:, 0] > self.threshold).astype(int)


def _tree_artifact(name: str, threshold: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, (300, 4))
    y = (x[:, 0] > threshold).astype(int)
    tree = DecisionTreeClassifier(max_leaf_nodes=8).fit(x, y)
    return PolicyArtifact.from_tree(tree, name=name, codegen=False)


# ---------------------------------------------------------------------------
# TraceCapture
# ---------------------------------------------------------------------------
class TestTraceCapture:
    def test_bound_and_eviction(self):
        cap = TraceCapture(capacity=8, sample_rate=1.0, seed=0)
        rows = np.arange(40.0).reshape(10, 4)
        landed = cap.submit_group("m", 1, rows, list(range(10)))
        assert landed == 10
        assert len(cap) == 8
        assert cap.evicted == 2
        # Survivors are the newest entries, seq still monotonic.
        seqs = [e["seq"] for e in cap.entries_since(0)]
        assert seqs == sorted(seqs) and seqs[-1] == 10

    def test_zero_rate_is_free_and_clamped(self):
        cap = TraceCapture(capacity=4, sample_rate=0.0)
        assert cap.submit_group("m", 1, np.ones((5, 2)), [0] * 5) == 0
        assert len(cap) == 0
        cap.sample_rate = 7.5
        assert cap.sample_rate == 1.0
        cap.sample_rate = -3
        assert cap.sample_rate == 0.0

    def test_submit_never_raises(self):
        cap = TraceCapture(capacity=4, sample_rate=1.0)
        # Mismatched rows/actions and garbage rows are swallowed.
        assert cap.submit_group("m", 1, np.ones((3, 2)), [0]) == 0
        assert cap.submit_group("m", 1, "not an array", [0]) == 0
        assert cap.submit_group("m", 1, np.ones(3), [0, 1, 2]) == 0
        assert len(cap) == 0

    def test_entries_since_consumers_get_disjoint_batches(self):
        cap = TraceCapture(capacity=64, sample_rate=1.0, seed=0)
        cap.submit_group("m", 1, np.ones((5, 2)), list(range(5)))
        first = cap.entries_since(0)
        mark = first[-1]["seq"]
        cap.submit_group("m", 1, np.ones((3, 2)), list(range(3)))
        second = cap.entries_since(mark)
        assert {e["seq"] for e in first}.isdisjoint(
            {e["seq"] for e in second}
        )
        assert len(second) == 3

    def test_take_is_destructive_and_ordered(self):
        cap = TraceCapture(capacity=16, sample_rate=1.0, seed=0)
        cap.submit_group("m", 1, np.ones((6, 2)), list(range(6)))
        first = cap.take(4)
        rest = cap.take()
        assert [e["seq"] for e in first] == [1, 2, 3, 4]
        assert [e["seq"] for e in rest] == [5, 6]
        assert cap.take() == []

    def test_ingest_resequences_and_labels(self):
        parent = TraceCapture(capacity=16)
        parent.submit_group  # parent rate stays 0; ingest is explicit
        worker = TraceCapture(capacity=16, sample_rate=1.0, seed=1)
        worker.submit_group("m", 2, np.ones((3, 2)), [0, 1, 0])
        n = parent.ingest(worker.entries_since(0), {"shard": "7"})
        assert n == 3
        entries = parent.entries_since(0)
        assert [e["seq"] for e in entries] == [1, 2, 3]
        assert [e["origin_seq"] for e in entries] == [1, 2, 3]
        assert all(e["shard"] == "7" for e in entries)

    @settings(deadline=None, max_examples=10)
    @given(
        rate=st.floats(min_value=0.05, max_value=1.0),
        capacity=st.integers(min_value=4, max_value=48),
        per_thread=st.integers(min_value=5, max_value=40),
    )
    def test_concurrent_submit_drain_property(
            self, rate, capacity, per_thread):
        """Under concurrent submit/drain at a random sampling rate: the
        ring never exceeds its bound, every sampled pair matches a real
        served (state, action), and drained batches are disjoint."""
        cap = TraceCapture(capacity=capacity, sample_rate=rate, seed=3)
        n_threads = 3
        drained, depths = [], []
        stop = threading.Event()

        def submitter(tid: int) -> None:
            for i in range(per_thread):
                key = tid * 1000 + i
                rows = np.array([[tid, i, key, 0.5]])
                cap.submit_group(f"m{tid}", 1, rows, [key])

        def drainer() -> None:
            while not stop.is_set():
                depths.append(len(cap))
                batch = cap.take(5)
                if batch:
                    drained.append(batch)

        threads = [threading.Thread(target=submitter, args=(t,))
                   for t in range(n_threads)]
        drain = threading.Thread(target=drainer)
        drain.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        drain.join()
        drained.append(cap.take())
        depths.append(len(cap))

        assert all(d <= capacity for d in depths)
        seen = set()
        for batch in drained:
            batch_seqs = {e["seq"] for e in batch}
            assert seen.isdisjoint(batch_seqs), "overlapping drains"
            seen |= batch_seqs
            for e in batch:
                tid, i, key, _pad = e["state"]
                # The sampled pair is a real served (state, action):
                # the state row encodes exactly the action it was
                # served with.
                assert e["action"] == int(key) == int(tid) * 1000 + int(i)
                assert e["model"] == f"m{int(tid)}"
        # Nothing ever gets drained twice even counting eviction.
        assert len(seen) == sum(len(b) for b in drained)


# ---------------------------------------------------------------------------
# Redistiller
# ---------------------------------------------------------------------------
class TestRedistiller:
    def _fill(self, cap, n, served_threshold=0.5, seed=0):
        rng = np.random.default_rng(seed)
        rows = rng.uniform(0, 1, (n, 4))
        actions = (rows[:, 0] > served_threshold).astype(int)
        cap.submit_group("policy", 1, rows, actions.tolist())
        return rows

    def test_refit_below_min_samples_buffers(self):
        cap = TraceCapture(capacity=512, sample_rate=1.0, seed=0)
        rd = Redistiller(cap, ThresholdTeacher(0.3), min_samples=100)
        self._fill(cap, 60)
        assert rd.refit() is None
        assert rd.pending_samples() == 60  # buffered, not lost
        self._fill(cap, 60, seed=1)
        result = rd.refit()
        assert result is not None
        assert result.n_samples == 120

    def test_refit_tracks_teacher_and_measures_drift(self):
        cap = TraceCapture(capacity=2048, sample_rate=1.0, seed=0)
        rd = Redistiller(cap, ThresholdTeacher(0.3), min_samples=256,
                         leaf_nodes=16)
        self._fill(cap, 600, served_threshold=0.5)
        result = rd.refit()
        assert result.agreement >= 0.95, "refit tree must fit teacher"
        # The served policy used threshold 0.5 vs the teacher's 0.3 —
        # about 20% of uniform traffic disagrees.
        assert result.served_agreement < 0.9
        # The refit artifact itself now agrees with the teacher.
        rng = np.random.default_rng(9)
        x = rng.uniform(0, 1, (500, 4))
        want = ThresholdTeacher(0.3).act_greedy_batch(x)
        got = result.artifact.predict_batch(x)
        assert (want == got).mean() >= 0.95

    def test_teacher_swap_is_live(self):
        cap = TraceCapture(capacity=2048, sample_rate=1.0, seed=0)
        rd = Redistiller(cap, ThresholdTeacher(0.5), min_samples=64)
        rd.teacher = ThresholdTeacher(0.2)
        self._fill(cap, 200, served_threshold=0.5)
        result = rd.refit()
        assert result.served_agreement < 0.8  # drift vs swapped teacher

    def test_artifact_teacher_via_predict_batch_shim(self):
        cap = TraceCapture(capacity=512, sample_rate=1.0, seed=0)
        teacher_artifact = PolicyArtifact.from_teacher(
            ThresholdTeacher(0.3), n_features=4, name="teacher"
        )
        rd = Redistiller(cap, teacher_artifact, min_samples=64)
        self._fill(cap, 200)
        assert rd.refit().agreement >= 0.9


# ---------------------------------------------------------------------------
# Decision-table matrix (injected HealthMonitor callbacks, no sleeps)
# ---------------------------------------------------------------------------
class StubTier:
    def __init__(self):
        self.calls = []
        self._version = 0
        self.journal = None

    def publish(self, name, artifact, alias=None):
        self._version += 1
        self.calls.append(("publish", name, self._version))
        return self._version

    def set_split(self, ref, canary=None, canary_fraction=0.0,
                  shadow=None):
        self.calls.append(
            ("set_split", ref, canary, canary_fraction, shadow)
        )

    def clear_split(self, ref):
        self.calls.append(("clear_split", ref))

    def alias(self, alias, target, version=None):
        self.calls.append(("alias", alias, target, version))

    def rollback_publish(self, name, version):
        self.calls.append(("rollback_publish", name, version))

    def ops(self):
        return [c[0] for c in self.calls]


class StubMonitor:
    def __init__(self):
        self.callbacks = []
        self.phases = {}

    def subscribe(self, cb):
        self.callbacks.append(cb)

    def states(self):
        return dict(self.phases)

    def fire(self, name):
        self.phases[name] = "firing"
        rule = types.SimpleNamespace(name=name)
        for cb in self.callbacks:
            cb(rule, "fire", {"kind": "alert_fire"})

    def pend(self, name):
        self.phases[name] = "pending"

    def resolve(self, name):
        self.phases[name] = "inactive"
        rule = types.SimpleNamespace(name=name)
        for cb in self.callbacks:
            cb(rule, "resolve", {"kind": "alert_resolve"})


class StubRedistiller:
    def __init__(self, result=None):
        self.result = result
        self.refits = 0

    def refit(self):
        if self.result is None:
            return None
        self.refits += 1
        return self.result

    def pending_samples(self):
        return 0


def _controller(tier=None, monitor=None, **kwargs):
    clock = FakeClock()
    tier = tier if tier is not None else StubTier()
    monitor = monitor if monitor is not None else StubMonitor()
    kwargs.setdefault("stages", (0.01, 0.10, 0.50))
    kwargs.setdefault("hold_s", 10.0)
    ctl = AutoCanaryController(
        tier, "abr", StubRedistiller(), monitor, clock=clock, **kwargs
    )
    return ctl, tier, monitor, clock


def _ramp(ctl, clock):
    version = ctl.begin_ramp(object(), now=clock())
    return version


class TestDecisionTable:
    """The promote/rollback decision table: (agreement ok | low) x
    (SLO ok | burning) x (pending | firing) transitions, driven purely
    through injected monitor callbacks and explicit ticks."""

    def test_all_resolved_ramps_to_promotion(self):
        ctl, tier, _monitor, clock = _controller()
        _ramp(ctl, clock)
        assert ("set_split", "abr", "abr-refit@1", 0.01, None) in tier.calls
        for expected in (0.10, 0.50):
            clock.advance(10.0)
            ctl.tick(now=clock())
            assert ctl.status()["fraction"] == expected
        clock.advance(10.0)
        ctl.tick(now=clock())
        assert ctl.status()["state"] == "idle"
        assert ("alias", "abr", "abr-refit", 1) in tier.calls
        assert "rollback_publish" not in tier.ops()

    def test_agreement_fire_mid_ramp_rolls_back(self):
        ctl, tier, monitor, clock = _controller()
        _ramp(ctl, clock)
        monitor.fire("shadow_agreement_floor")
        ctl.tick(now=clock())
        assert tier.ops()[-2:] == ["clear_split", "rollback_publish"]
        assert ("rollback_publish", "abr-refit", 1) in tier.calls
        assert ctl.status()["state"] == "idle"
        assert ctl.history[-1]["reason"] == "shadow_agreement_floor"

    def test_slo_fire_mid_ramp_rolls_back(self):
        ctl, tier, monitor, clock = _controller()
        _ramp(ctl, clock)
        clock.advance(10.0)
        ctl.tick(now=clock())  # advanced to stage 1 first
        assert ctl.status()["fraction"] == 0.10
        monitor.fire("p95_slo_burn")
        ctl.tick(now=clock())
        assert ("rollback_publish", "abr-refit", 1) in tier.calls
        assert "alias" not in tier.ops()

    def test_pending_pauses_without_rollback(self):
        ctl, tier, monitor, clock = _controller()
        _ramp(ctl, clock)
        monitor.pend("p95_slo_burn")
        clock.advance(10.0)
        ctl.tick(now=clock())
        status = ctl.status()
        assert status["state"] == "ramping"
        assert status["fraction"] == 0.01  # held, not advanced
        assert status["paused_on"] == ["p95_slo_burn"]
        assert "rollback_publish" not in tier.ops()
        # A pending phase restarts the hold: resolving does not count
        # the paused time toward the stage hold.
        monitor.resolve("p95_slo_burn")
        clock.advance(5.0)
        ctl.tick(now=clock())
        assert ctl.status()["fraction"] == 0.01
        clock.advance(10.0)
        ctl.tick(now=clock())
        assert ctl.status()["fraction"] == 0.10

    def test_unwatched_rule_fire_is_ignored(self):
        ctl, tier, monitor, clock = _controller()
        _ramp(ctl, clock)
        monitor.fire("queue_depth_ceiling")
        clock.advance(10.0)
        ctl.tick(now=clock())
        assert ctl.status()["fraction"] == 0.10
        assert "rollback_publish" not in tier.ops()

    def test_labeled_rule_keys_match_watch_prefix(self):
        ctl, tier, monitor, clock = _controller()
        _ramp(ctl, clock)
        monitor.phases['p95_slo_burn{model=abr}'] = "firing"
        clock.advance(10.0)
        ctl.tick(now=clock())
        assert ctl.status()["paused_on"] == ["p95_slo_burn{model=abr}"]

    def test_drift_fire_while_idle_triggers_refit_and_ramp(self):
        ctl, tier, monitor, clock = _controller()
        ctl.redistiller = StubRedistiller(RefitResult(
            artifact=object(), n_samples=500, agreement=0.99,
            served_agreement=0.7,
        ))
        monitor.fire("shadow_agreement_floor")
        assert ctl.status()["drift_pending"]
        monitor.resolve("shadow_agreement_floor")
        ctl.tick(now=clock())
        assert ctl.status()["state"] == "ramping"
        assert tier.ops()[:2] == ["publish", "set_split"]

    def test_low_agreement_refit_never_serves(self):
        ctl, tier, _monitor, clock = _controller(
            min_refit_agreement=0.95
        )
        ctl.redistiller = StubRedistiller(RefitResult(
            artifact=object(), n_samples=500, agreement=0.80,
            served_agreement=0.7,
        ))
        ctl.request_refit()
        ctl.tick(now=clock())
        assert ctl.status()["state"] == "idle"
        assert tier.calls == []
        assert ctl.history[-1]["action"] == "refit_rejected"

    def test_insufficient_samples_keeps_drift_pending(self):
        ctl, tier, _monitor, clock = _controller()
        ctl.redistiller = StubRedistiller(None)
        ctl.request_refit()
        ctl.tick(now=clock())
        status = ctl.status()
        assert status["drift_pending"]  # retried on a later tick
        assert status["state"] == "idle"
        assert tier.calls == []

    def test_service_estimate_gate_pauses_ramp(self):
        estimate = {"value": 50.0}
        ctl, tier, _monitor, clock = _controller(
            slo_p95_ms=20.0,
            service_estimate_fn=lambda ref: estimate["value"],
        )
        _ramp(ctl, clock)
        clock.advance(10.0)
        ctl.tick(now=clock())
        status = ctl.status()
        assert status["fraction"] == 0.01
        assert status["paused_on"] and "service_estimate" in \
            status["paused_on"][0]
        estimate["value"] = 5.0
        clock.advance(10.0)
        ctl.tick(now=clock())
        assert ctl.status()["fraction"] == 0.10

    def test_shard_death_event_mid_ramp_rolls_back(self):
        from repro.obs.events import EventJournal

        journal = EventJournal()
        tier = StubTier()
        tier.journal = journal
        ctl, tier, _monitor, clock = _controller(tier=tier)
        _ramp(ctl, clock)
        journal.emit("shard_death", severity="error",
                     labels={"shard": "0"})
        ctl.tick(now=clock())
        assert ("rollback_publish", "abr-refit", 1) in tier.calls

    def test_begin_ramp_refuses_while_ramping(self):
        ctl, _tier, _monitor, clock = _controller()
        _ramp(ctl, clock)
        with pytest.raises(RuntimeError, match="already active"):
            ctl.begin_ramp(object(), now=clock())


# ---------------------------------------------------------------------------
# Splitter shadow-stat retirement (the drift-vs-ramp interaction)
# ---------------------------------------------------------------------------
class TestShadowStatRetirement:
    def test_shadowless_split_retires_stale_stats(self):
        splitter = TrafficSplitter(seed=0)
        splitter.set_split("abr", shadow="teacher")
        splitter.record_shadow("abr", "teacher", [0, 0], [1, 1])
        assert splitter.shadow_report()["abr"]["requests"] == 2
        # The auto-canary ramp replaces the detection mirror with a
        # canary-only split: the breached stats must retire with it.
        splitter.set_split("abr", canary="abr-refit@1",
                          canary_fraction=0.01)
        assert "abr" not in splitter.shadow_report()
        # Reinstalling the mirror after promotion starts fresh.
        splitter.set_split("abr", shadow="teacher")
        assert splitter.shadow_report()["abr"]["requests"] == 0


# ---------------------------------------------------------------------------
# rollback_publish tier surface
# ---------------------------------------------------------------------------
class TestRollbackPublishSurface:
    def test_server_rollback_guarded_by_splits(self):
        with PolicyServer(max_delay_s=0.0) as server:
            server.publish("policy", _tree_artifact("policy", 0.5))
            server.publish("cand", _tree_artifact("cand", 0.3))
            server.set_split("policy", canary="cand",
                            canary_fraction=0.5)
            with pytest.raises(ValueError, match="split"):
                server.rollback_publish("cand", 1)
            server.clear_split("policy")
            server.rollback_publish("cand", 1)
            with pytest.raises(KeyError):
                server.registry.resolve("cand")


# ---------------------------------------------------------------------------
# Per-(shard, model) service-time estimate (ROADMAP EWMA fix)
# ---------------------------------------------------------------------------
class TestRoutedServiceEstimate:
    def test_estimate_prefers_per_model_ewma(self):
        from repro.serve.cluster import ShardedPolicyService

        with ShardedPolicyService(n_shards=1, max_delay_s=1e-3) as svc:
            shard = svc._shards[0]
            shard.ewma_by_model = {"cheap": 0.001, "costly": 0.05}
            shard.ewma_service_s = 0.03
            # Per-(shard, model) estimate, not the blended per-shard
            # EWMA that mixes model costs.
            assert svc.routed_service_estimate_ms("cheap") == \
                pytest.approx(1.0)
            assert svc.routed_service_estimate_ms("costly") == \
                pytest.approx(50.0)
            # Unknown ref falls back to the blended EWMA.
            assert svc.routed_service_estimate_ms("other") == \
                pytest.approx(30.0)

    def test_estimate_none_without_signal_and_worst_across_shards(self):
        from repro.serve.cluster import ShardedPolicyService

        with ShardedPolicyService(n_shards=2, max_delay_s=1e-3) as svc:
            for shard in svc._shards:
                shard.ewma_by_model = {}
                shard.ewma_service_s = 0.0
            assert svc.routed_service_estimate_ms("m") is None
            svc._shards[0].ewma_by_model = {"m": 0.002}
            svc._shards[1].ewma_by_model = {"m": 0.008}
            # The controller gates on the worst shard.
            assert svc.routed_service_estimate_ms("m") == \
                pytest.approx(8.0)

    def test_start_online_wires_routed_estimate_into_controller(self):
        from repro.serve.cluster import ShardedPolicyService

        with ShardedPolicyService(n_shards=1, max_delay_s=1e-3) as svc:
            svc.publish("policy", _tree_artifact("policy", 0.5))
            svc.alias("abr", "policy")
            ctl = svc.start_online("abr", ThresholdTeacher(0.3),
                                   slo_p95_ms=25.0)
            assert ctl.service_estimate_fn == \
                svc.routed_service_estimate_ms
            svc._shards[0].ewma_by_model = {"abr": 0.1}
            assert "service_estimate" in " ".join(ctl._gates())
            svc._shards[0].ewma_by_model = {"abr": 0.001}
            assert ctl._gates() == []


# ---------------------------------------------------------------------------
# End-to-end over both transports, on a fake clock
# ---------------------------------------------------------------------------
def _online_cluster(transport, burn_flag=None, n_shards=1,
                    self_heal=False):
    """A 4-feature cluster serving alias ``abr`` -> ``policy`` (trained
    at threshold 0.5), with a published teacher at threshold 0.3 and a
    fake-clock monitor watching shadow agreement (plus an injectable
    p95 burn predicate)."""
    from repro.serve.cluster import ShardedPolicyService

    svc = ShardedPolicyService(n_shards=n_shards, transport=transport,
                               max_delay_s=1e-3, self_heal=self_heal)
    svc.publish("policy", _tree_artifact("policy", 0.5))
    svc.alias("abr", "policy")
    svc.publish("teacher", PolicyArtifact.from_teacher(
        ThresholdTeacher(0.3), n_features=4, name="teacher"
    ))
    clock = FakeClock()
    rules = standard_rules(
        svc._metrics, max_error_ratio=None,
        shadow_report_fn=svc.shadow_report,
        min_shadow_requests=50, min_shadow_agreement=0.95, for_s=0.0,
    )
    if burn_flag is not None:
        rules.append(AlertRule(
            "p95_slo_burn", lambda: burn_flag["on"], severity="page",
            for_s=0.0,
        ))
    monitor = HealthMonitor(rules, journal=svc.journal, clock=clock)
    ctl = svc.start_online(
        "abr", ThresholdTeacher(0.3), sample_rate=1.0, capacity=4096,
        monitor=monitor, min_samples=64, leaf_nodes=16,
        stages=(0.01, 0.5), hold_s=10.0, min_refit_agreement=0.8,
        detection_shadow="teacher", clock=clock,
    )
    return svc, ctl, monitor, clock


def _drive(svc, n=256, seed=0):
    rng = np.random.default_rng(seed)
    futures = [svc.submit("abr", row)
               for row in rng.uniform(0, 1, (n, 4))]
    results = [f.result(timeout=30) for f in futures]
    assert all(r.ok for r in results)
    return results


@pytest.mark.parametrize("transport", ["pipe", "socket"])
class TestOnlineEndToEnd:
    def test_drift_refit_ramp_promote(self, transport):
        """The paper's loop, closed: the served model degrades (its
        teacher moved), shadow_agreement_floor fires, a refit tree is
        produced from captured traffic, ramps through the canary
        stages, and is promoted to the alias — every decision on a
        fake clock."""
        svc, ctl, monitor, clock = _online_cluster(transport)
        try:
            # Arm worker-side sampling (first drain pushes the rate).
            ctl.tick(now=clock())
            svc.set_split("abr", shadow="teacher")
            _drive(svc, 256)
            monitor.tick(now=clock())
            assert "shadow_agreement_floor" in monitor.active_alerts()

            status = ctl.tick(now=clock())
            assert status["state"] == "ramping"
            assert status["fraction"] == 0.01
            assert svc.splits()["abr"].canary == "abr-refit@1"
            assert svc.splits()["abr"].shadow is None

            # The detection mirror is gone, so the floor resolves while
            # the fix ramps (and the gate un-blocks).
            monitor.tick(now=clock())
            assert monitor.active_alerts() == []

            _drive(svc, 64, seed=1)
            clock.advance(11.0)
            assert ctl.tick(now=clock())["fraction"] == 0.5
            clock.advance(11.0)
            status = ctl.tick(now=clock())
            assert status["state"] == "idle"

            # Promotion repointed the alias at the pinned refit and
            # reinstalled the detection mirror with fresh stats.
            assert svc.registry.aliases()["abr"] == ("abr-refit", 1)
            assert svc.splits()["abr"].shadow == "teacher"
            _drive(svc, 128, seed=2)
            report = svc.shadow_report()["abr"]
            assert report["requests"] >= 100
            assert report["agreement_rate"] >= 0.95

            monitor.tick(now=clock())
            assert monitor.active_alerts() == []

            kinds = [e["kind"] for e in svc.events()]
            assert "canary_change" in kinds and "alias_move" in kinds
            history = [h["action"] for h in ctl.history]
            assert history[0] == "refit"
            assert history[-1] == "promote"
        finally:
            svc.close()

    def test_slo_burn_mid_ramp_rolls_back(self, transport):
        """The symmetric story: an injected p95 SLO burn mid-ramp
        triggers rollback_publish — the candidate version is gone
        everywhere, the split is cleared, and serving continues."""
        burn = {"on": False}
        svc, ctl, monitor, clock = _online_cluster(
            transport, burn_flag=burn
        )
        try:
            ctl.tick(now=clock())
            refit = _tree_artifact("abr-refit", 0.3, seed=5)
            ctl.begin_ramp(refit, now=clock())
            assert "abr" in svc.splits()
            _drive(svc, 64)

            burn["on"] = True
            monitor.tick(now=clock())
            assert "p95_slo_burn" in monitor.active_alerts()
            status = ctl.tick(now=clock())
            assert status["state"] == "idle"

            # The candidate was rolled back on the parent and every
            # shard; the split is gone; the alias still serves.
            with pytest.raises(KeyError):
                svc.registry.resolve("abr-refit")
            assert "abr" not in {
                ref for ref, split in svc.splits().items()
                if split.canary is not None
            }
            states = svc.replica_states()
            assert all(
                "abr-refit" not in state["models"]
                for state in [states["parent"],
                              *states["shards"].values()]
            )
            _drive(svc, 64, seed=3)

            events = svc.events()
            rollbacks = [e for e in events if e["kind"] == "rollback"]
            assert rollbacks, "rollback_publish must be journaled"
            assert ctl.history[-1]["reason"] == "p95_slo_burn"
        finally:
            svc.close()

    def test_chaos_shard_death_mid_ramp(self, transport):
        """Kill a shard mid-canary-ramp with the controller active: the
        ramp rolls back cleanly, zero futures drop, and the journal
        orders shard_death before the rollback and the split clear."""
        import time as _time

        svc, ctl, monitor, clock = _online_cluster(
            transport, n_shards=2, self_heal=False
        )
        try:
            ctl.tick(now=clock())
            refit = _tree_artifact("abr-refit", 0.3, seed=5)
            ctl.begin_ramp(refit, now=clock())
            rng = np.random.default_rng(4)
            futures = [svc.submit("abr", row)
                       for row in rng.uniform(0, 1, (128, 4))]

            victim = svc._shards[0].shard_id
            svc.kill_shard(victim)
            # Wall-clock wait only for the process death to propagate
            # into the journal; every *decision* below is fake-clocked.
            deadline = _time.monotonic() + 30
            while _time.monotonic() < deadline:
                if any(e["kind"] == "shard_death"
                       for e in svc.events()):
                    break
                _time.sleep(0.05)

            # Zero dropped futures: every one resolves (the victim's
            # in-flight work fails with shard_error, it never hangs).
            results = [f.result(timeout=30) for f in futures]
            assert all(r.ok or r.error == "shard_error"
                       for r in results)

            status = ctl.tick(now=clock())
            assert status["state"] == "idle"
            assert ctl.history[-1]["action"] == "rollback"
            assert ctl.history[-1]["reason"] == "shard_death"

            events = svc.events()
            death_seq = min(e["seq"] for e in events
                            if e["kind"] == "shard_death")
            rollback_seq = min(e["seq"] for e in events
                               if e["kind"] == "rollback")
            cleared_seq = min(
                e["seq"] for e in events
                if e["kind"] == "canary_change"
                and e["fields"].get("cleared")
            )
            assert death_seq < rollback_seq
            assert death_seq < cleared_seq

            # The survivor keeps serving and the candidate is gone.
            with pytest.raises(KeyError):
                svc.registry.resolve("abr-refit")
            _drive(svc, 32, seed=6)
        finally:
            svc.close()


# ---------------------------------------------------------------------------
# Worker capture drain plumbing
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("transport", ["pipe", "socket"])
class TestWorkerCaptureDrain:
    def test_capture_drains_from_workers_with_shard_labels(
            self, transport):
        svc, ctl, _monitor, clock = _online_cluster(transport)
        try:
            ctl.tick(now=clock())  # arm worker sampling
            _drive(svc, 96)
            svc._drain_worker_captures()
            entries = svc.capture.entries_since(0)
            assert len(entries) >= 90
            assert all("shard" in e and "origin_seq" in e
                       for e in entries)
            assert {e["model"] for e in entries} == {"policy"}
            # Drains are incremental: a second drain adds nothing new.
            before = len(svc.capture)
            svc._drain_worker_captures()
            assert len(svc.capture) == before
        finally:
            svc.close()
