"""Tests for tools/check_metrics.py and tools/postmortem.py.

The linter is CI's gate on the /metrics endpoint, so it must both pass
a real scrape from the hub and actually catch the failure modes it
claims to (missing HELP/TYPE, duplicate series, malformed samples,
histograms without a closing +Inf bucket, health families with the
wrong type or vocabulary).  The postmortem CLI must render and diff
real :class:`~repro.obs.postmortem.FlightRecorder` bundles.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))

import numpy as np

from check_metrics import (  # noqa: E402
    lint_health_families,
    lint_metrics,
    lint_online_families,
)

from repro.obs.events import EventJournal
from repro.obs.metrics import MetricsHub, render_text, with_labels
from repro.obs.postmortem import FlightRecorder

GOOD = """\
# HELP repro_reqs_total Requests served
# TYPE repro_reqs_total counter
repro_reqs_total{model="abr"} 5
repro_reqs_total{model="toy"} 2
# HELP repro_lat_seconds Latency
# TYPE repro_lat_seconds histogram
repro_lat_seconds_bucket{le="0.01"} 4
repro_lat_seconds_bucket{le="+Inf"} 7
repro_lat_seconds_sum 0.12
repro_lat_seconds_count 7
"""


def test_clean_page_lints_clean():
    assert lint_metrics(GOOD) == []


def test_real_hub_render_lints_clean():
    hub = MetricsHub()
    hub.counter("repro_a_total", "a").labels(model="m").inc(2)
    hub.gauge("repro_b", "b").labels().set(1.5)
    hub.histogram("repro_c_seconds", "c",
                  buckets=[0.001, 0.1]).labels(model="m").observe(0.01)
    worker = MetricsHub()
    worker.counter("repro_a_total", "a").labels(model="m").inc(9)
    page = render_text(
        hub.snapshot(), with_labels(worker.snapshot(), {"shard": "0"})
    )
    assert lint_metrics(page) == []


def test_sample_without_type_caught():
    errors = lint_metrics("repro_orphan_total 3\n")
    assert any("no # TYPE" in e for e in errors)


def test_sample_without_help_caught():
    errors = lint_metrics(
        "# TYPE repro_x_total counter\nrepro_x_total 1\n"
    )
    assert any("no # HELP" in e for e in errors)


def test_duplicate_series_caught():
    page = GOOD + 'repro_reqs_total{model="abr"} 9\n'
    errors = lint_metrics(page)
    assert any("duplicate series" in e for e in errors)


def test_duplicate_help_caught():
    page = "# HELP repro_reqs_total again\n" + GOOD
    errors = lint_metrics(page)
    assert any("duplicate HELP" in e for e in errors)


def test_invalid_type_caught():
    errors = lint_metrics(
        "# HELP repro_x h\n# TYPE repro_x summary\nrepro_x 1\n"
    )
    assert any("invalid type" in e for e in errors)


def test_non_numeric_value_caught():
    errors = lint_metrics(
        "# HELP repro_x h\n# TYPE repro_x gauge\nrepro_x oops\n"
    )
    assert any("non-numeric" in e for e in errors)


def test_histogram_missing_inf_bucket_caught():
    page = (
        "# HELP repro_h_seconds h\n"
        "# TYPE repro_h_seconds histogram\n"
        'repro_h_seconds_bucket{le="0.1"} 3\n'
        "repro_h_seconds_sum 0.2\n"
        "repro_h_seconds_count 3\n"
    )
    errors = lint_metrics(page)
    assert any("+Inf" in e for e in errors)


def test_malformed_sample_caught():
    errors = lint_metrics("this is not a metric line\n")
    assert any("unparseable" in e for e in errors)


HEALTH_GOOD = """\
# HELP repro_events_total Structured journal events
# TYPE repro_events_total counter
repro_events_total{kind="publish",severity="info"} 3
repro_events_total{kind="shard_death",severity="error"} 1
# HELP repro_alerts_active 1 while firing
# TYPE repro_alerts_active gauge
repro_alerts_active{rule="p95_slo_burn"} 1
repro_alerts_active{rule="error_ratio_burn"} 0
"""


def test_health_families_clean_page_lints_clean():
    assert lint_health_families(HEALTH_GOOD) == []


def test_health_families_absent_is_clean():
    assert lint_health_families(GOOD) == []


def test_events_total_unknown_kind_caught():
    page = HEALTH_GOOD + (
        'repro_events_total{kind="explosion",severity="info"} 1\n'
    )
    errors = lint_health_families(page)
    assert any("not in EVENT_KINDS" in e for e in errors)


def test_events_total_missing_severity_caught():
    page = HEALTH_GOOD + 'repro_events_total{kind="publish"} 1\n'
    errors = lint_health_families(page)
    assert any("severity" in e for e in errors)


def test_alerts_active_without_rule_label_caught():
    page = HEALTH_GOOD + "repro_alerts_active 1\n"
    errors = lint_health_families(page)
    assert any("without rule label" in e for e in errors)


def test_alerts_active_non_binary_value_caught():
    page = HEALTH_GOOD + 'repro_alerts_active{rule="x"} 3\n'
    errors = lint_health_families(page)
    assert any("not 0 or 1" in e for e in errors)


def test_health_family_wrong_type_caught():
    page = HEALTH_GOOD.replace(
        "# TYPE repro_alerts_active gauge",
        "# TYPE repro_alerts_active counter",
    )
    errors = lint_health_families(page)
    assert any("expected 'gauge'" in e for e in errors)


ONLINE_GOOD = """\
# HELP repro_online_captured_total Sampled pairs
# TYPE repro_online_captured_total counter
repro_online_captured_total{model="abr"} 120
# HELP repro_online_capture_sample_rate Live sampling rate
# TYPE repro_online_capture_sample_rate gauge
repro_online_capture_sample_rate 0.05
# HELP repro_online_canary_fraction Current canary fraction
# TYPE repro_online_canary_fraction gauge
repro_online_canary_fraction{model="abr"} 0.1
"""


def test_online_families_clean_page_lints_clean():
    assert lint_online_families(ONLINE_GOOD) == []


def test_online_families_absent_is_clean():
    assert lint_online_families(GOOD) == []


def test_online_captured_without_model_label_caught():
    page = ONLINE_GOOD + "repro_online_captured_total 3\n"
    errors = lint_online_families(page)
    assert any("without model label" in e for e in errors)


def test_online_fraction_outside_unit_interval_caught():
    page = ONLINE_GOOD + (
        'repro_online_canary_fraction{model="x"} 1.5\n'
    )
    errors = lint_online_families(page)
    assert any("outside [0, 1]" in e for e in errors)


def test_online_family_wrong_type_caught():
    page = ONLINE_GOOD.replace(
        "# TYPE repro_online_captured_total counter",
        "# TYPE repro_online_captured_total gauge",
    )
    errors = lint_online_families(page)
    assert any("expected 'counter'" in e for e in errors)


def test_real_capture_ring_render_lints_clean():
    from repro.serve.online import TraceCapture

    hub = MetricsHub()
    capture = TraceCapture(capacity=8, sample_rate=0.5, seed=0,
                           hub=hub)
    capture.submit_group(
        "abr", 1, np.ones((6, 3)), [0, 1, 0, 1, 0, 1]
    )
    page = hub.render()
    assert lint_metrics(page) == []
    assert lint_online_families(page) == []
    assert "repro_online_capture_depth" in page


def test_real_journal_and_gauge_render_lint_clean():
    hub = MetricsHub()
    journal = EventJournal(hub=hub)
    journal.emit("publish", labels={"model": "m"})
    journal.emit("alert_fire", severity="page", labels={"rule": "r"})
    hub.gauge("repro_alerts_active", "firing flag").labels(rule="r").set(1)
    page = hub.render()
    assert lint_metrics(page) == []
    assert lint_health_families(page) == []


def _bundle_pair(tmp_path):
    journal = EventJournal()
    journal.emit("publish", labels={"model": "m"}, version=1)
    recorder = FlightRecorder(
        directory=str(tmp_path), journal=journal,
        metrics_fn=lambda: (
            "# HELP repro_x h\n# TYPE repro_x gauge\n"
            f"repro_x {journal.last_seq}\n"
        ),
        state_fn=lambda: {"tier": "test", "events": journal.last_seq},
    )
    first = recorder.capture("before")
    journal.emit("shard_death", severity="error", labels={"shard": "0"})
    second = recorder.capture("after")
    return first, second


def test_postmortem_show_renders_report(tmp_path, capsys):
    from postmortem import main as postmortem_main

    first, _ = _bundle_pair(tmp_path)
    assert postmortem_main(["postmortem.py", "show", str(first)]) == 0
    out = capsys.readouterr().out
    assert "reason   before" in out
    assert "publish" in out
    assert "tier: test" in out


def test_postmortem_diff_reports_new_events_and_deltas(tmp_path, capsys):
    from postmortem import main as postmortem_main

    first, second = _bundle_pair(tmp_path)
    assert postmortem_main(
        ["postmortem.py", "diff", str(first), str(second)]) == 0
    out = capsys.readouterr().out
    assert "shard_death" in out  # the incident's own timeline
    assert "publish" not in out.split("events only in")[1].split(
        "state changes")[0]  # shared history is not re-listed
    assert "repro_x: 1 -> 2" in out
    assert "events: 1 -> 2" in out
