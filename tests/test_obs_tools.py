"""Tests for tools/check_metrics.py — the exposition-format linter.

The linter is CI's gate on the /metrics endpoint, so it must both pass
a real scrape from the hub and actually catch the failure modes it
claims to (missing HELP/TYPE, duplicate series, malformed samples,
histograms without a closing +Inf bucket).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))

from check_metrics import lint_metrics  # noqa: E402

from repro.obs.metrics import MetricsHub, render_text, with_labels

GOOD = """\
# HELP repro_reqs_total Requests served
# TYPE repro_reqs_total counter
repro_reqs_total{model="abr"} 5
repro_reqs_total{model="toy"} 2
# HELP repro_lat_seconds Latency
# TYPE repro_lat_seconds histogram
repro_lat_seconds_bucket{le="0.01"} 4
repro_lat_seconds_bucket{le="+Inf"} 7
repro_lat_seconds_sum 0.12
repro_lat_seconds_count 7
"""


def test_clean_page_lints_clean():
    assert lint_metrics(GOOD) == []


def test_real_hub_render_lints_clean():
    hub = MetricsHub()
    hub.counter("repro_a_total", "a").labels(model="m").inc(2)
    hub.gauge("repro_b", "b").labels().set(1.5)
    hub.histogram("repro_c_seconds", "c",
                  buckets=[0.001, 0.1]).labels(model="m").observe(0.01)
    worker = MetricsHub()
    worker.counter("repro_a_total", "a").labels(model="m").inc(9)
    page = render_text(
        hub.snapshot(), with_labels(worker.snapshot(), {"shard": "0"})
    )
    assert lint_metrics(page) == []


def test_sample_without_type_caught():
    errors = lint_metrics("repro_orphan_total 3\n")
    assert any("no # TYPE" in e for e in errors)


def test_sample_without_help_caught():
    errors = lint_metrics(
        "# TYPE repro_x_total counter\nrepro_x_total 1\n"
    )
    assert any("no # HELP" in e for e in errors)


def test_duplicate_series_caught():
    page = GOOD + 'repro_reqs_total{model="abr"} 9\n'
    errors = lint_metrics(page)
    assert any("duplicate series" in e for e in errors)


def test_duplicate_help_caught():
    page = "# HELP repro_reqs_total again\n" + GOOD
    errors = lint_metrics(page)
    assert any("duplicate HELP" in e for e in errors)


def test_invalid_type_caught():
    errors = lint_metrics(
        "# HELP repro_x h\n# TYPE repro_x summary\nrepro_x 1\n"
    )
    assert any("invalid type" in e for e in errors)


def test_non_numeric_value_caught():
    errors = lint_metrics(
        "# HELP repro_x h\n# TYPE repro_x gauge\nrepro_x oops\n"
    )
    assert any("non-numeric" in e for e in errors)


def test_histogram_missing_inf_bucket_caught():
    page = (
        "# HELP repro_h_seconds h\n"
        "# TYPE repro_h_seconds histogram\n"
        'repro_h_seconds_bucket{le="0.1"} 3\n'
        "repro_h_seconds_sum 0.2\n"
        "repro_h_seconds_count 3\n"
    )
    errors = lint_metrics(page)
    assert any("+Inf" in e for e in errors)


def test_malformed_sample_caught():
    errors = lint_metrics("this is not a metric line\n")
    assert any("unparseable" in e for e in errors)
