"""Registry and result-container tests for the experiment harness."""

import importlib

import pytest

from repro.experiments import REGISTRY, ExperimentResult, run_experiment
from repro.utils.tables import ResultTable


class TestRegistry:
    def test_all_modules_importable(self):
        for name, module_path in REGISTRY.items():
            module = importlib.import_module(module_path)
            assert callable(module.run), name

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig999")

    def test_expected_experiments_present(self):
        expected = {
            "fig7", "table3", "fig9", "fig11", "fig12", "fig13", "fig14",
            "fig15", "fig16", "fig17", "fig18", "fig20", "fig27", "fig28",
            "fig29", "fig31",
        }
        assert expected == set(REGISTRY)


class TestExperimentResult:
    def test_render_includes_metrics(self):
        table = ResultTable("T", ["a"])
        table.add_row([1])
        result = ExperimentResult(
            experiment="x", title="demo", tables=[table],
            metrics={"speedup": 26.8},
        )
        out = result.render()
        assert "demo" in out
        assert "26.8" in out
