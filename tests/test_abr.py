"""Tests for the ABR substrate: video model, QoE, environment, baselines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.envs.abr import (
    ABREnv,
    ABRState,
    Bola,
    BufferBased,
    Festive,
    FixedLowest,
    LinearQoE,
    RateBased,
    RobustMPC,
    Video,
    run_policy,
)
from repro.envs.abr.env import (
    FEATURE_NAMES,
    IDX_BUFFER,
    IDX_LAST_BITRATE,
    MAX_BUFFER_SECONDS,
    STATE_DIM,
)
from repro.envs.traces import fixed_trace


class TestVideo:
    def test_synthetic_shape(self, tiny_video):
        assert tiny_video.sizes_kbits.shape == (12, 6)

    def test_sizes_scale_with_bitrate(self, tiny_video):
        sizes = tiny_video.sizes_kbits
        assert np.all(sizes[:, 1:] > sizes[:, :-1])

    def test_duration(self, tiny_video):
        assert tiny_video.duration_seconds == 48.0

    def test_requires_ascending_ladder(self):
        with pytest.raises(ValueError):
            Video(bitrates_kbps=(750, 300), sizes_kbits=np.ones((2, 2)))

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            Video(bitrates_kbps=(300, 750),
                  sizes_kbits=-np.ones((2, 2)))

    def test_n_chunks_positive(self):
        with pytest.raises(ValueError):
            Video.synthetic(n_chunks=0)


class TestLinearQoE:
    def test_reward_components(self):
        qoe = LinearQoE()
        # 1 Mbps chunk, no change, no stall: reward = 1.
        assert qoe.reward(1000, 1000, 0.0) == pytest.approx(1.0)

    def test_rebuffer_penalty(self):
        qoe = LinearQoE()
        assert qoe.reward(1000, 1000, 1.0) == pytest.approx(1.0 - 4.3)

    def test_smoothness_penalty(self):
        qoe = LinearQoE()
        assert qoe.reward(2000, 1000, 0.0) == pytest.approx(2.0 - 1.0)

    def test_negative_rebuffer_rejected(self):
        with pytest.raises(ValueError):
            LinearQoE().reward(1000, 1000, -0.1)

    @given(st.floats(0, 10), st.floats(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_rebuffer(self, r1, r2):
        qoe = LinearQoE()
        lo, hi = sorted([r1, r2])
        assert qoe.reward(1000, 1000, hi) <= qoe.reward(1000, 1000, lo)


class TestABREnv:
    def test_state_dim(self, tiny_env):
        state = tiny_env.reset(rng=0)
        assert state.shape == (STATE_DIM,)
        assert len(FEATURE_NAMES) == STATE_DIM

    def test_episode_length(self, tiny_env):
        tiny_env.reset(rng=0)
        steps = 0
        done = False
        while not done:
            _, _, done, _ = tiny_env.step(0)
            steps += 1
        assert steps == tiny_env.video.n_chunks

    def test_step_before_reset_rejected(self, tiny_video, tiny_traces):
        env = ABREnv(tiny_video, tiny_traces)
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_invalid_action_rejected(self, tiny_env):
        tiny_env.reset(rng=0)
        with pytest.raises(ValueError):
            tiny_env.step(99)

    def test_buffer_capped(self, fixed_env):
        state = fixed_env.reset(rng=0)
        done = False
        while not done:
            state, _, done, info = fixed_env.step(0)
            assert info["buffer_s"] <= MAX_BUFFER_SECONDS + 1e-9

    def test_download_time_positive(self, fixed_env):
        fixed_env.reset(rng=0)
        _, _, _, info = fixed_env.step(3)
        assert info["download_time_s"] > 0

    def test_throughput_reflects_link(self, fixed_env):
        # On a 3000 kbps link, measured goodput must be close to it.
        fixed_env.reset(rng=0)
        _, _, _, info = fixed_env.step(4)
        assert 1500 < info["throughput_mbps"] * 1000 < 3100

    def test_last_bitrate_tracked(self, fixed_env):
        fixed_env.reset(rng=0)
        state, _, _, _ = fixed_env.step(2)
        assert state[IDX_LAST_BITRATE] == pytest.approx(1.2)

    def test_rebuffer_on_oversized_chunk(self, tiny_video):
        env = ABREnv(tiny_video, [fixed_trace(200.0)], random_start=False)
        env.reset(rng=0)
        _, _, _, info = env.step(5)  # 4300 kbps on a 200 kbps link
        assert info["rebuffer_s"] > 0

    def test_structured_view_roundtrip(self, tiny_env):
        state = tiny_env.reset(rng=0)
        view = ABRState.from_vector(state)
        assert view.buffer_seconds == state[IDX_BUFFER]

    def test_requires_traces(self, tiny_video):
        with pytest.raises(ValueError):
            ABREnv(tiny_video, [])

    def test_upcoming_sizes_clipped_at_end(self, tiny_env):
        tiny_env.reset(rng=0)
        for _ in range(tiny_env.video.n_chunks - 1):
            tiny_env.step(0)
        assert tiny_env.upcoming_sizes_kbits(5).shape[0] == 1


class TestBaselines:
    @pytest.mark.parametrize("policy", [
        FixedLowest(), BufferBased(), RateBased(), Festive(), Bola(),
        RobustMPC(horizon=3),
    ])
    def test_actions_in_range(self, policy, tiny_env):
        result = run_policy(policy, tiny_env, trace=tiny_env.traces[0], rng=0)
        assert result.actions.min() >= 0
        assert result.actions.max() < tiny_env.n_actions

    def test_fixed_lowest_always_zero(self, tiny_env):
        result = run_policy(FixedLowest(), tiny_env,
                            trace=tiny_env.traces[0], rng=0)
        assert np.all(result.actions == 0)

    def test_bb_low_buffer_low_bitrate(self, tiny_env):
        state = np.zeros(STATE_DIM)
        state[IDX_BUFFER] = 1.0
        assert BufferBased().select(state, tiny_env) == 0

    def test_bb_high_buffer_high_bitrate(self, tiny_env):
        state = np.zeros(STATE_DIM)
        state[IDX_BUFFER] = 30.0
        assert BufferBased().select(state, tiny_env) == tiny_env.n_actions - 1

    def test_rb_follows_throughput(self, tiny_env):
        from repro.envs.abr.env import THROUGHPUT_SLICE

        state = np.zeros(STATE_DIM)
        state[THROUGHPUT_SLICE] = 3.0  # 3 Mbps history
        level = RateBased().select(state, tiny_env)
        assert tiny_env.video.bitrates_kbps[level] <= 3000

    def test_festive_steps_one_level(self, tiny_env):
        from repro.envs.abr.env import THROUGHPUT_SLICE

        policy = Festive(patience=1)
        policy.reset()
        state = np.zeros(STATE_DIM)
        state[IDX_LAST_BITRATE] = 0.3
        state[THROUGHPUT_SLICE] = 10.0
        assert policy.select(state, tiny_env) == 1  # one rung up only

    def test_mpc_converges_on_fixed_link(self, tiny_video):
        env = ABREnv(tiny_video, [fixed_trace(3000.0)], random_start=False)
        result = run_policy(RobustMPC(), env, trace=env.traces[0], rng=0)
        # After warm-up it should settle at 2850 kbps.
        tail = result.bitrates_kbps[3:]
        assert np.median(tail) == 2850

    def test_rmpc_beats_fixed(self, tiny_env):
        q_mpc = run_policy(RobustMPC(), tiny_env,
                           trace=tiny_env.traces[0], rng=0).qoe_mean
        q_fixed = run_policy(FixedLowest(), tiny_env,
                             trace=tiny_env.traces[0], rng=0).qoe_mean
        assert q_mpc > q_fixed

    def test_episode_result_totals(self, tiny_env):
        result = run_policy(BufferBased(), tiny_env,
                            trace=tiny_env.traces[0], rng=0)
        assert result.qoe_total == pytest.approx(result.rewards.sum())
        assert len(result.actions) == tiny_env.video.n_chunks
