"""Documentation health: links resolve, guides exist, snippets execute.

The same checks CI's ``docs`` job runs (``tools/check_docs.py``),
wired into tier-1 so a broken link or rotted snippet fails locally
before it ships.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)

GUIDES = ("architecture.md", "serving.md", "cluster.md", "benchmarks.md")


def test_the_four_guides_exist_and_are_linked_from_readme():
    readme = (REPO_ROOT / "README.md").read_text()
    for guide in GUIDES:
        assert (REPO_ROOT / "docs" / guide).exists(), guide
        assert f"docs/{guide}" in readme, (
            f"README does not link docs/{guide}"
        )


def test_all_relative_links_resolve():
    errors = check_docs.check_links()
    assert not errors, "\n".join(errors)


def test_docs_have_executable_snippets():
    counts = {
        path.name: len(check_docs.python_snippets(path))
        for path in check_docs.doc_files() if path.parent.name == "docs"
    }
    # the three concept guides teach by runnable example; benchmarks.md
    # is reference prose (shell commands) and carries no floor
    for guide in ("architecture.md", "serving.md", "cluster.md"):
        assert counts.get(guide, 0) >= 1, counts


@pytest.mark.parametrize("guide", GUIDES)
def test_docs_snippets_execute(guide):
    path = REPO_ROOT / "docs" / guide
    errors = check_docs.run_snippets([path])
    assert not errors, "\n".join(errors)
