"""Tests for the RouteNet* masked system and rerouting adjustment."""

import numpy as np
import pytest

from repro.core.hypergraph import RoutingMaskedSystem
from repro.core.hypergraph.adjust import (
    ReroutePoint,
    _divert_connection,
    quadrant_fractions,
)
from repro.envs.routing import gravity_demands, nsfnet
from repro.teachers.routenet import RouteNetStar, train_routenet


@pytest.fixture(scope="module")
def routing_setup():
    topo = nsfnet()
    tms = gravity_demands(topo, utilization=0.5, seed=11, count=3)
    net = train_routenet(topo, tms[:2], epochs=300, use_cache=False, seed=0)
    star = RouteNetStar(topo, net, temperature=0.5)
    routing = star.optimize(tms[2], sweeps=1, seed=0)
    return topo, tms[2], star, routing


class TestRoutingMaskedSystem:
    def test_hypergraph_shape(self, routing_setup):
        topo, tm, star, routing = routing_setup
        system = RoutingMaskedSystem(star, routing, tm)
        assert system.hypergraph.incidence.shape == (182, 42)

    def test_divergence_zero_at_identity(self, routing_setup):
        topo, tm, star, routing = routing_setup
        for kind in ("decisions", "latency"):
            system = RoutingMaskedSystem(star, routing, tm, output_kind=kind)
            assert system.divergence(
                system.hypergraph.incidence
            ) == pytest.approx(0.0, abs=1e-9)

    def test_divergence_positive_when_masked(self, routing_setup):
        topo, tm, star, routing = routing_setup
        system = RoutingMaskedSystem(star, routing, tm, output_kind="latency")
        w = system.hypergraph.incidence * 0.3
        assert system.divergence(w) > 0

    @pytest.mark.parametrize("kind", ["decisions", "latency"])
    def test_gradient_check(self, routing_setup, kind):
        topo, tm, star, routing = routing_setup
        system = RoutingMaskedSystem(star, routing, tm, output_kind=kind)
        w = system.hypergraph.incidence * 0.7
        _, grad = system.divergence_and_grad(w)
        eps = 1e-5
        es, vs = np.nonzero(system.hypergraph.incidence)
        rng = np.random.default_rng(0)
        for k in rng.choice(len(es), 4, replace=False):
            e, v = es[k], vs[k]
            w[e, v] += eps
            fp = system.divergence(w)
            w[e, v] -= 2 * eps
            fm = system.divergence(w)
            w[e, v] += eps
            assert grad[e, v] == pytest.approx(
                (fp - fm) / (2 * eps), abs=1e-5
            )

    def test_gradient_respects_support(self, routing_setup):
        topo, tm, star, routing = routing_setup
        system = RoutingMaskedSystem(star, routing, tm, output_kind="latency")
        _, grad = system.divergence_and_grad(
            system.hypergraph.incidence * 0.5
        )
        assert np.all(grad[system.hypergraph.incidence == 0] == 0)

    def test_invalid_output_kind(self, routing_setup):
        topo, tm, star, routing = routing_setup
        with pytest.raises(ValueError):
            RoutingMaskedSystem(star, routing, tm, output_kind="bogus")


class TestDivertConnection:
    def test_finds_divergence_point(self):
        info = _divert_connection([0, 1, 2, 3], [0, 1, 4, 3])
        assert info == (1, (1, 2))

    def test_same_source_required(self):
        assert _divert_connection([0, 1, 2], [5, 1, 2]) is None

    def test_identical_paths_none(self):
        assert _divert_connection([0, 1, 2], [0, 1, 2]) is None


class TestQuadrantFractions:
    def _point(self, w, l):
        return ReroutePoint(pair=(0, 1), w_delta=w, l_delta=l,
                            p1=[0, 1], p2=[0, 2])

    def test_consistent_point(self):
        f = quadrant_fractions([self._point(1.0, 1.0)])
        assert f["consistent"] == 1.0

    def test_violation_point(self):
        f = quadrant_fractions([self._point(1.0, -1.0)])
        assert f["violations"] == 1.0

    def test_near_axis(self):
        f = quadrant_fractions([self._point(0.0, 1.0)], w_tolerance=0.1)
        assert f["near_axis"] == 1.0

    def test_empty(self):
        f = quadrant_fractions([])
        assert f == {"consistent": 0.0, "near_axis": 0.0, "violations": 0.0}

    def test_fractions_sum_to_one(self):
        points = [self._point(1.0, 1.0), self._point(-1.0, 1.0),
                  self._point(0.0, 0.0)]
        f = quadrant_fractions(points)
        assert sum(f.values()) == pytest.approx(1.0)
