"""Tests for the numpy NN substrate: layers, MLP, optimizers, heads."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    GaussianPolicy,
    MLP,
    QEstimator,
    ReLU,
    SGD,
    Sigmoid,
    SoftmaxPolicy,
    Tanh,
    ValueNet,
)
from repro.nn.a2c import A2CTrainer, Trajectory, rollout
from repro.nn.layers import softmax
from repro.nn.optim import clip_gradients
from repro.nn.policy import evaluate_return


def numeric_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        x[idx] += eps
        fp = f()
        x[idx] -= 2 * eps
        fm = f()
        x[idx] += eps
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


class TestLayers:
    def test_dense_shapes(self):
        layer = Dense(3, 4, seed=0)
        out = layer.forward(np.ones((5, 3)))
        assert out.shape == (5, 4)

    def test_dense_gradient_check(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 2, seed=1)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        out = layer.forward(x)
        layer.dw[...] = 0
        layer.db[...] = 0
        layer.backward(out - target)
        assert np.allclose(layer.dw, numeric_grad(loss, layer.w), atol=1e-6)
        assert np.allclose(layer.db, numeric_grad(loss, layer.b), atol=1e-6)

    def test_dense_invalid_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    @pytest.mark.parametrize("cls", [ReLU, Tanh, Sigmoid])
    def test_activation_gradient(self, cls):
        rng = np.random.default_rng(2)
        layer = cls()
        x = rng.normal(size=(3, 4))
        target = rng.normal(size=(3, 4))

        def loss():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        out = layer.forward(x)
        grad_in = layer.backward(out - target)
        assert np.allclose(grad_in, numeric_grad(loss, x), atol=1e-5)

    def test_softmax_rows_sum_one(self):
        p = softmax(np.random.default_rng(0).normal(size=(6, 4)))
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_softmax_stable_large_logits(self):
        p = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(p, 0.5)


class TestMLP:
    def test_forward_shape(self):
        net = MLP(5, (8,), 3, seed=0)
        assert net.forward(np.zeros((2, 5))).shape == (2, 3)

    def test_input_dim_checked(self):
        net = MLP(5, (8,), 3, seed=0)
        with pytest.raises(ValueError):
            net.forward(np.zeros((2, 4)))

    def test_gradient_check_full(self):
        rng = np.random.default_rng(3)
        net = MLP(4, (6,), 2, seed=1)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 2))

        def loss():
            return 0.5 * np.sum((net.forward(x) - target) ** 2)

        out = net.forward(x)
        net.zero_grads()
        net.backward(out - target)
        for p, g in zip(net.params(), net.grads()):
            assert np.allclose(g, numeric_grad(loss, p), atol=1e-5)

    def test_skip_feature_gradient(self):
        rng = np.random.default_rng(4)
        net = MLP(4, (6,), 2, skip_features=[0, 2], seed=1)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 2))

        def loss():
            return 0.5 * np.sum((net.forward(x) - target) ** 2)

        out = net.forward(x)
        net.zero_grads()
        net.backward(out - target)
        for p, g in zip(net.params(), net.grads()):
            assert np.allclose(g, numeric_grad(loss, p), atol=1e-5)

    def test_skip_feature_reaches_output(self):
        # With a skip connection, changing the skipped input must change
        # the output even when all body weights are zeroed.
        net = MLP(3, (4,), 1, skip_features=[1], seed=0)
        for layer in net.body:
            for p in layer.params():
                p[...] = 0.0
        a = net.forward(np.array([[0.0, 1.0, 0.0]]))
        b = net.forward(np.array([[0.0, 2.0, 0.0]]))
        assert not np.allclose(a, b)

    def test_skip_feature_out_of_range(self):
        with pytest.raises(ValueError):
            MLP(3, (4,), 1, skip_features=[5])

    def test_weights_roundtrip(self):
        net = MLP(3, (4,), 2, seed=0)
        other = MLP(3, (4,), 2, seed=99)
        other.set_weights(net.get_weights())
        x = np.ones((1, 3))
        assert np.allclose(net.forward(x), other.forward(x))

    def test_num_parameters(self):
        net = MLP(3, (4,), 2, seed=0)
        assert net.num_parameters() == (3 * 4 + 4) + (4 * 2 + 2)


class TestOptimizers:
    def _quadratic_descent(self, opt):
        x = np.array([5.0])
        for _ in range(200):
            opt.step([x], [2 * x])
        return abs(float(x[0]))

    def test_sgd_converges(self):
        assert self._quadratic_descent(SGD(lr=0.1)) < 1e-3

    def test_adam_converges(self):
        assert self._quadratic_descent(Adam(lr=0.2)) < 1e-3

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam(lr=0)

    def test_clip_gradients(self):
        g = [np.array([3.0, 4.0])]
        norm = clip_gradients(g, 1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(g[0]) == pytest.approx(1.0)


class TestSoftmaxPolicy:
    def test_probabilities_valid(self):
        policy = SoftmaxPolicy(4, 3, seed=0)
        p = policy.probabilities(np.zeros((2, 4)))
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)

    def test_act_in_range(self):
        policy = SoftmaxPolicy(4, 3, seed=0)
        actions = {policy.act(np.zeros(4), rng=i) for i in range(20)}
        assert actions <= {0, 1, 2}

    def test_cross_entropy_training_fits_labels(self):
        # advantage=1 policy-gradient steps implement cross-entropy.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        y = (x[:, 0] > 0).astype(int)
        policy = SoftmaxPolicy(3, 2, hidden=(16,), seed=1)
        opt = Adam(lr=5e-3)
        for _ in range(300):
            policy.policy_gradient_step(
                x, y, np.ones(len(y)), opt, entropy_coef=0.0
            )
        acc = (policy.act_greedy_batch(x) == y).mean()
        assert acc > 0.95


class TestGaussianPolicy:
    def test_actions_within_bounds(self):
        policy = GaussianPolicy(3, 2, low=0.0, high=1.0, seed=0)
        for i in range(10):
            a = policy.act(np.zeros(3), rng=i)
            assert np.all(a >= 0.0) and np.all(a <= 1.0)

    def test_mean_action_deterministic(self):
        policy = GaussianPolicy(3, 2, low=-1.0, high=1.0, seed=0)
        s = np.zeros((1, 3))
        assert np.allclose(policy.mean_action(s), policy.mean_action(s))

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            GaussianPolicy(3, 2, low=1.0, high=0.0)

    def test_reinforce_moves_mean_toward_rewarded_action(self):
        policy = GaussianPolicy(2, 1, low=0.0, high=10.0,
                                hidden=(8,), seed=3)
        opt = Adam(lr=1e-2)
        rng = np.random.default_rng(0)
        state = np.ones((1, 2))
        for _ in range(400):
            action = policy.act(state[0], rng)
            reward = -abs(float(action[0]) - 7.0)
            policy.policy_gradient_step(
                state, action[None, :], np.array([reward + 3.0]), opt
            )
        assert abs(float(policy.mean_action(state)[0, 0]) - 7.0) < 1.5


class TestValueNet:
    def test_regression_converges(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 3))
        y = x[:, 0] * 2.0
        net = ValueNet(3, hidden=(16,), seed=0)
        opt = Adam(lr=5e-3)
        losses = [net.fit_step(x, y, opt) for _ in range(400)]
        assert losses[-1] < losses[0] * 0.1


class TestReturns:
    def test_evaluate_return(self):
        out = evaluate_return([1.0, 1.0, 1.0], gamma=0.5)
        assert out[-1] == pytest.approx(1.0)
        assert out[0] == pytest.approx(1.0 + 0.5 + 0.25)

    def test_rollout_records_trajectory(self, tiny_env):
        traj = rollout(tiny_env, lambda s: 0, rng=0)
        assert len(traj) == tiny_env.video.n_chunks
        assert traj.states.shape[1] == 25


class TestQEstimator:
    def test_one_step_regression(self):
        # gamma=0 fitted Q is per-action reward regression.
        rng = np.random.default_rng(0)
        states = rng.normal(size=(300, 2))
        actions = rng.integers(0, 2, 300)
        rewards = np.where(actions == 0, states[:, 0], -states[:, 0])
        trajs = [
            Trajectory(states=s[None], actions=np.array([a]),
                       rewards=np.array([r]))
            for s, a, r in zip(states, actions, rewards)
        ]
        qest = QEstimator(2, 2, gamma=0.0, seed=0)
        qest.fit(trajs, sweeps=1, epochs_per_sweep=300)
        q = qest.predict(np.array([[2.0, 0.0]]))
        assert q[0, 0] > q[0, 1]

    def test_resampling_weights_nonnegative(self):
        qest = QEstimator(2, 3, seed=0)
        w = qest.resampling_weights(np.zeros((5, 2)))
        assert np.all(w >= 0)


class TestA2C:
    def test_training_improves_tiny_env(self, tiny_env):
        policy = SoftmaxPolicy(25, tiny_env.n_actions, hidden=(16,), seed=0)
        trainer = A2CTrainer(policy=policy, gamma=0.9)

        class Normalized:
            def reset(self, rng=None):
                return tiny_env.reset(rng) * 0.1

            def step(self, a):
                s, r, d, i = tiny_env.step(a)
                return s * 0.1, r, d, i

        returns = trainer.train(Normalized(), episodes=200, seed=1)
        assert np.mean(returns[-30:]) > np.mean(returns[:30])
