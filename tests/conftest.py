"""Shared fixtures: tiny environments and deterministic datasets."""

import numpy as np
import pytest

from repro.envs.abr import ABREnv, Video
from repro.envs.traces import fixed_trace, trace_set


@pytest.fixture(scope="session")
def tiny_video():
    return Video.synthetic(n_chunks=12, seed=1)


@pytest.fixture(scope="session")
def tiny_traces():
    return trace_set("hsdpa", 4, duration_s=120, seed=2)


@pytest.fixture()
def tiny_env(tiny_video, tiny_traces):
    return ABREnv(tiny_video, tiny_traces)


@pytest.fixture()
def fixed_env(tiny_video):
    return ABREnv(tiny_video, [fixed_trace(3000.0)], random_start=False)


@pytest.fixture(scope="session")
def toy_classification():
    """An axis-aligned 4-class problem trees should solve exactly."""
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (600, 5))
    y = (x[:, 0] > 0.5).astype(int) * 2 + (x[:, 2] > 0.4).astype(int)
    return x, y


@pytest.fixture(scope="session")
def toy_regression():
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, (500, 4))
    y = np.stack([np.sign(x[:, 0]), x[:, 1] > 0.2], axis=1).astype(float)
    return x, y
