"""Tests for the observability spine (repro.obs) and its serving hooks.

Covers the metrics hub (instruments, labels, collectors, Prometheus
rendering, multi-snapshot merge), the tracer (span decomposition that
must partition client-observed latency exactly), the HTTP exporter,
the ServerMetrics percentile rework (streaming histogram — no more
frozen percentiles at the retention cap), and the native-counter
snapshot/delta helpers.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.core.tree import native
from repro.obs.exporter import MetricsExporter
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    LogHistogram,
    MetricsHub,
    render_text,
    with_labels,
)
from repro.obs.trace import STAGES, Tracer
from repro.serve.server import ServerMetrics


class TestLogHistogram:
    def test_quantiles_monotone_and_clamped(self):
        hist = LogHistogram()
        rng = np.random.default_rng(3)
        samples = rng.lognormal(mean=-7.0, sigma=1.0, size=5000)
        hist.observe_many(samples)
        p50, p95, p99 = (hist.quantile(q) for q in (0.5, 0.95, 0.99))
        assert 0 < p50 <= p95 <= p99
        assert hist.quantile(0.0) >= float(samples.min())
        assert hist.quantile(1.0) <= float(samples.max()) + 1e-12
        # Bucket interpolation is an estimate, but a bounded one.
        assert abs(p50 - float(np.percentile(samples, 50))) <= p50

    def test_observe_many_matches_repeated_observe(self):
        a, b = LogHistogram(), LogHistogram()
        rng = np.random.default_rng(11)
        samples = rng.uniform(1e-5, 1e-2, 200)
        a.observe_many(samples)
        for s in samples:
            b.observe(float(s))
        assert a.state()["counts"] == b.state()["counts"]
        assert a.total == b.total
        assert a.sum == pytest.approx(b.sum)

    def test_empty_histogram_reads_zero(self):
        hist = LogHistogram()
        assert hist.total == 0
        assert hist.quantile(0.95) == 0.0

    def test_copy_is_independent(self):
        hist = LogHistogram()
        hist.observe(0.001)
        clone = hist.copy()
        hist.observe(0.002)
        assert clone.total == 1 and hist.total == 2

    def test_state_is_wire_friendly(self):
        hist = LogHistogram()
        hist.observe_many([0.001, 0.004, 0.1])
        state = hist.state()
        assert state["total"] == 3
        assert json.dumps(state)  # plain lists/floats only


class TestMetricsHub:
    def test_counter_render_has_help_and_type(self):
        hub = MetricsHub()
        hub.counter("repro_test_total", "A test counter").labels(
            model="m").inc(3)
        text = hub.render()
        assert "# HELP repro_test_total A test counter" in text
        assert "# TYPE repro_test_total counter" in text
        assert 'repro_test_total{model="m"} 3' in text

    def test_counter_rejects_negative_inc(self):
        hub = MetricsHub()
        counter = hub.counter("repro_neg_total", "h").labels()
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        hub = MetricsHub()
        gauge = hub.gauge("repro_depth", "queue depth").labels()
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert "repro_depth 4" in hub.render()

    def test_histogram_renders_cumulative_buckets(self):
        hub = MetricsHub()
        h = hub.histogram("repro_lat_seconds", "latency",
                          buckets=[0.001, 0.01, 0.1]).labels(model="m")
        h.observe_many([0.0005, 0.005, 0.05, 5.0])
        text = hub.render()
        assert 'repro_lat_seconds_bucket{model="m",le="0.001"} 1' in text
        assert 'repro_lat_seconds_bucket{model="m",le="0.01"} 2' in text
        assert 'repro_lat_seconds_bucket{model="m",le="0.1"} 3' in text
        assert 'repro_lat_seconds_bucket{model="m",le="+Inf"} 4' in text
        assert 'repro_lat_seconds_count{model="m"} 4' in text

    def test_same_labels_return_same_child(self):
        hub = MetricsHub()
        family = hub.counter("repro_same_total", "h")
        family.labels(a="1", b="2").inc()
        family.labels(b="2", a="1").inc()  # order must not matter
        assert 'repro_same_total{a="1",b="2"} 2' in hub.render()

    def test_kind_conflict_rejected(self):
        hub = MetricsHub()
        hub.counter("repro_conflict", "h")
        with pytest.raises(ValueError):
            hub.gauge("repro_conflict", "h")

    def test_collectors_run_and_failures_are_dropped(self):
        hub = MetricsHub()
        gauge = hub.gauge("repro_pull", "pull-style").labels()
        hub.register_collector(lambda: gauge.set(42.0))

        def boom() -> None:
            raise RuntimeError("scrape must survive this")

        hub.register_collector(boom)
        assert "repro_pull 42" in hub.render()

    def test_with_labels_and_render_text_merge(self):
        parent, worker = MetricsHub(), MetricsHub()
        parent.counter("repro_reqs_total", "reqs").labels(model="m").inc(2)
        worker.counter("repro_reqs_total", "reqs").labels(model="m").inc(5)
        merged = render_text(
            parent.snapshot(),
            with_labels(worker.snapshot(), {"shard": "0"}),
        )
        # One HELP/TYPE pair per family even across snapshots.
        assert merged.count("# HELP repro_reqs_total") == 1
        assert merged.count("# TYPE repro_reqs_total") == 1
        assert 'repro_reqs_total{model="m"} 2' in merged
        assert 'repro_reqs_total{model="m",shard="0"} 5' in merged

    def test_render_text_dedups_identical_series(self):
        a, b = MetricsHub(), MetricsHub()
        a.counter("repro_dup_total", "h").labels().inc(1)
        b.counter("repro_dup_total", "h").labels().inc(9)
        merged = render_text(a.snapshot(), b.snapshot())
        # First occurrence wins; a duplicate series would be rejected
        # by any Prometheus scraper.
        assert merged.count("\nrepro_dup_total ") + merged.startswith(
            "repro_dup_total ") == 1

    def test_default_time_buckets_cover_serving_range(self):
        assert DEFAULT_TIME_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_TIME_BUCKETS[-1] > 60.0  # past any sane latency


class TestTracer:
    def test_disabled_tracer_mints_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        assert not tracer.enabled
        assert tracer.maybe_start("m") is None

    def test_sampling_rate_is_respected(self):
        tracer = Tracer(sample_rate=0.25, seed=5)
        minted = sum(
            tracer.maybe_start("m") is not None for _ in range(4000)
        )
        assert 800 <= minted <= 1200  # ~1000 expected

    def test_cluster_spans_partition_total_exactly(self):
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.maybe_start("m", now=10.0)
        trace.mark_flush(10.002)
        trace.mark_send(10.003)
        trace.finish(service_s=0.004, kernel_s=0.001, shard=1,
                     batch_size=8, now=10.010)
        tracer.record(trace)
        names = [span.name for span in trace.spans]
        assert names == list(STAGES)
        assert sum(s.duration_s for s in trace.spans) == pytest.approx(
            trace.total_s, abs=1e-12)
        by_name = {s.name: s.duration_s for s in trace.spans}
        assert by_name["queue_wait"] == pytest.approx(0.002)
        assert by_name["batch_assembly"] == pytest.approx(0.001)
        assert by_name["wire"] == pytest.approx(0.003)
        assert by_name["worker_service"] == pytest.approx(0.003)
        assert by_name["kernel"] == pytest.approx(0.001)

    def test_inprocess_spans_have_no_wire(self):
        trace = Tracer(sample_rate=1.0).maybe_start("m", now=0.0)
        trace.mark_flush(0.001)
        trace.finish(service_s=0.002, kernel_s=0.002, now=0.004)
        names = [span.name for span in trace.spans]
        assert "wire" not in names
        assert sum(s.duration_s for s in trace.spans) == pytest.approx(
            trace.total_s, abs=1e-12)

    def test_garbage_worker_durations_never_go_negative(self):
        # A skewed or corrupt reply reporting more service time than
        # the round trip must clamp, not produce negative wire spans.
        trace = Tracer(sample_rate=1.0).maybe_start("m", now=0.0)
        trace.mark_flush(0.001)
        trace.mark_send(0.002)
        trace.finish(service_s=99.0, kernel_s=120.0, now=0.005)
        assert all(s.duration_s >= 0.0 for s in trace.spans)
        assert sum(s.duration_s for s in trace.spans) == pytest.approx(
            trace.total_s, abs=1e-12)

    def test_ring_is_bounded_and_most_recent_first(self):
        tracer = Tracer(sample_rate=1.0, capacity=4)
        for i in range(10):
            trace = tracer.maybe_start("m", now=float(i))
            trace.finish(now=float(i) + 0.5)
            tracer.record(trace)
        stored = tracer.traces()
        assert len(stored) == 4
        assert stored[0]["trace_id"] > stored[-1]["trace_id"]
        snap = tracer.snapshot()
        assert snap["started"] == 10 and snap["finished"] == 10
        assert snap["stored"] == 4

    def test_chrome_trace_event_shape(self):
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.maybe_start("m", now=0.0)
        trace.mark_flush(0.001)
        trace.finish(service_s=0.001, now=0.003)
        tracer.record(trace)
        doc = tracer.chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        event = doc["traceEvents"][0]
        assert event["ph"] == "X" and event["tid"] == trace.trace_id
        assert event["ts"] >= 0 and event["dur"] >= 0
        json.loads(tracer.chrome_trace_json())  # valid JSON end to end

    def test_bad_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestExporter:
    def _scrape(self, url: str) -> bytes:
        return urllib.request.urlopen(url, timeout=5).read()

    def test_endpoints(self):
        hub = MetricsHub()
        hub.counter("repro_exp_total", "h").labels().inc()
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.maybe_start("m", now=0.0)
        trace.finish(now=0.002)
        tracer.record(trace)
        with MetricsExporter(hub.render, tracer=tracer) as exporter:
            assert self._scrape(exporter.url + "/healthz") == b"ok\n"
            body = self._scrape(exporter.url + "/metrics").decode()
            assert "repro_exp_total 1" in body
            traces = json.loads(self._scrape(exporter.url + "/traces"))
            assert len(traces["traces"]) == 1
            assert traces["finished"] == 1
            chrome = json.loads(self._scrape(
                exporter.url + "/traces?format=chrome"))
            assert chrome["traceEvents"]
            with pytest.raises(urllib.error.HTTPError) as err:
                self._scrape(exporter.url + "/nope")
            assert err.value.code == 404

    def test_render_failure_returns_500_not_crash(self):
        def broken() -> str:
            raise RuntimeError("bad scrape")

        with MetricsExporter(broken) as exporter:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._scrape(exporter.url + "/metrics")
            assert err.value.code == 500
            # The server survives for the next request.
            assert self._scrape(exporter.url + "/healthz") == b"ok\n"

    def test_traces_empty_without_tracer(self):
        hub = MetricsHub()
        with MetricsExporter(hub.render) as exporter:
            traces = json.loads(self._scrape(exporter.url + "/traces"))
            assert traces == {"traces": []}


class TestServerMetricsPercentiles:
    def test_p95_empty_window_reads_zero(self):
        metrics = ServerMetrics()
        assert metrics.p95_ms() == 0.0
        assert metrics.p95_ms(window_s=1.0) == 0.0

    def test_p95_all_error_stream_reads_zero(self):
        # Rejection latencies stay out of the percentile pool: a flood
        # of malformed requests must not fabricate an SLO reading.
        metrics = ServerMetrics()
        for _ in range(50):
            metrics.record("m", 0, 0.5, error="bad_input")
        assert metrics.p95_ms() == 0.0
        snap = metrics.snapshot()["m"]
        assert snap["errors"] == 50
        assert snap["latency_ms"]["p95"] == 0.0

    def test_p95_window_older_than_every_sample_reads_zero(self):
        metrics = ServerMetrics()
        metrics.record_group("m", 1, [0.01] * 20)
        assert metrics.p95_ms() > 0.0
        # A window that pre-dates every sample is empty, not stale.
        assert metrics.p95_ms(window_s=0.0) == 0.0

    def test_snapshot_percentiles_never_freeze(self):
        # The old capped-list implementation stopped absorbing samples
        # at max_latency_samples; the streaming histogram must keep
        # tracking a shifted distribution past any cap.
        metrics = ServerMetrics(max_latency_samples=100)
        metrics.record_group("m", 1, [0.001] * 200)
        before = metrics.snapshot()["m"]["latency_ms"]["p50"]
        metrics.record_group("m", 1, [0.1] * 2000)
        after = metrics.snapshot()["m"]["latency_ms"]["p50"]
        assert after > before * 10

    def test_snapshot_percentiles_monotone(self):
        metrics = ServerMetrics()
        rng = np.random.default_rng(2)
        metrics.record_group(
            "m", 1, list(rng.lognormal(-7, 1, size=500)))
        lat = metrics.snapshot()["m"]["latency_ms"]
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"]
        assert lat["mean"] > 0

    def test_hub_mirror_carries_model_labels(self):
        hub = MetricsHub()
        metrics = ServerMetrics(hub=hub)
        metrics.record("m", 1, 0.002)
        metrics.record("m", 1, 0.002, error="bad_input")
        text = hub.render()
        assert 'repro_server_requests_total{model="m"} 2' in text
        assert ('repro_server_errors_total{kind="bad_input",model="m"} 1'
                in text)
        assert 'repro_server_latency_seconds_count{model="m"} 1' in text


class TestNativeCounters:
    def test_snapshot_and_delta(self):
        base = native.snapshot()
        assert all(isinstance(v, int) for v in base.values())
        assert native.delta(base) == {}  # nothing moved
        # A synthetic "since" with a lower count surfaces as increment.
        if base:
            key = next(iter(base))
            since = dict(base)
            since[key] -= 3
            assert native.delta(since)[key] == 3
        assert native.delta({})  == {
            k: v for k, v in base.items() if v
        }
