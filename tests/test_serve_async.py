"""Asyncio front end, adaptive microbatching, and loadgen RNG plumbing."""

import asyncio

import numpy as np
import pytest

from repro.core.tree import DecisionTreeClassifier
from repro.serve import (
    AdaptiveDelay,
    PolicyArtifact,
    PolicyServer,
    ServeError,
)


@pytest.fixture(scope="module")
def toy():
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (800, 5))
    y = (x[:, 0] > 0.5).astype(int) * 2 + (x[:, 2] > 0.4).astype(int)
    return DecisionTreeClassifier(max_leaf_nodes=32).fit(x, y), x


class TestAsyncClient:
    def test_predict_and_act(self, toy):
        from repro.serve.aio import AsyncPolicyClient

        tree, x = toy
        with PolicyServer(max_batch=16, max_delay_s=1e-3) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            client = AsyncPolicyClient(server)

            async def main():
                result = await client.predict("toy", x[0])
                action = await client.act("toy", x[1])
                many = await client.predict_many("toy", x[:32])
                bad = await client.predict("toy", np.full(5, np.nan))
                with pytest.raises(ServeError):
                    await client.act("ghost", x[0])
                return result, action, many, bad

            result, action, many, bad = asyncio.run(main())
        assert result.ok and result.action == tree.predict(x[:1])[0]
        assert action == tree.predict(x[1:2])[0]
        assert np.array_equal(
            [r.action for r in many], tree.predict(x[:32])
        )
        assert (bad.ok, bad.error) == (False, "non_finite")

    def test_concurrent_coroutines_cobatch(self, toy):
        """Many coroutine clients coalesce through the same batcher."""
        from repro.serve.aio import AsyncPolicyClient

        tree, x = toy
        with PolicyServer(max_batch=64, max_delay_s=20e-3) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))

            async def main():
                client = AsyncPolicyClient(server)
                return await asyncio.gather(*[
                    client.predict("toy", row) for row in x[:48]
                ])

            results = asyncio.run(main())
            sizes = server.metrics()["toy"]["batch_sizes"]
        assert all(r.ok for r in results)
        assert np.array_equal(
            [r.action for r in results], tree.predict(x[:48])
        )
        assert max(sizes) > 1  # coroutines co-batched without threads

    def test_cluster_backend_uses_bulk_path(self, toy):
        from repro.serve.aio import AsyncPolicyClient
        from repro.serve.cluster import ShardedPolicyService

        tree, x = toy
        with ShardedPolicyService(n_shards=2) as service:
            service.publish("toy", PolicyArtifact.from_tree(tree))
            client = AsyncPolicyClient(service)

            async def main():
                return await client.predict_many("toy", x[:256])

            results = asyncio.run(main())
        assert len(results) == 256
        assert np.array_equal(
            [r.action for r in results], tree.predict(x[:256])
        )

    def test_requires_a_server_surface(self):
        from repro.serve.aio import AsyncPolicyClient

        with pytest.raises(TypeError):
            AsyncPolicyClient(object())

    def test_submit_async_after_close_raises(self, toy):
        tree, x = toy
        server = PolicyServer(max_batch=8, max_delay_s=1e-3)
        server.publish("toy", PolicyArtifact.from_tree(tree))
        server.close()

        async def main():
            return server.submit_async("toy", x[0])

        with pytest.raises(RuntimeError, match="closed"):
            asyncio.run(main())


class TestRunLoadAsync:
    def test_closed_loop_report(self, toy):
        from repro.serve.loadgen import run_load_async

        tree, x = toy
        with PolicyServer(max_batch=32, max_delay_s=1e-3) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree),
                           alias="toy/prod")
            report = run_load_async(
                server, "toy/prod", x[:128], n_clients=8,
                scenario="async-unit",
            )
        assert report.scenario == "async-unit"
        assert report.n_requests == 128 and report.n_errors == 0
        assert report.throughput_rps > 0
        assert 0 < report.latency_p50_ms <= report.latency_p99_ms
        assert report.versions == {1: 128}

    def test_chunked_mode_counts_every_row(self, toy):
        from repro.serve.cluster import ShardedPolicyService
        from repro.serve.loadgen import run_load_async

        tree, x = toy
        with ShardedPolicyService(n_shards=2) as service:
            service.publish("toy", PolicyArtifact.from_tree(tree))
            report = run_load_async(
                service, "toy", x[:256], n_clients=4, chunk=32,
                repeats=2, scenario="async-bulk",
            )
        assert report.n_requests == 512 and report.n_errors == 0
        assert report.versions == {1: 512}

    def test_bad_chunk_rejected(self, toy):
        from repro.serve.loadgen import run_load_async

        with pytest.raises(ValueError):
            run_load_async(None, "m", np.ones((4, 2)), chunk=0)


class TestAdaptiveDelay:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveDelay(max_delay_s=-1.0)
        with pytest.raises(ValueError):
            AdaptiveDelay(max_delay_s=1e-3, floor_s=2e-3)
        with pytest.raises(ValueError):
            AdaptiveDelay(alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveDelay(initial_fill=2.0)

    def test_idle_shrinks_loaded_grows(self):
        delay = AdaptiveDelay(max_delay_s=2e-3, alpha=0.5,
                              initial_fill=0.5)
        mid = delay.current()
        for _ in range(20):  # sustained full flushes with backlog
            delay.observe(batch_size=64, queue_depth=64, max_batch=64)
        assert delay.current() > mid
        assert delay.current() == pytest.approx(2e-3, rel=1e-3)
        for _ in range(20):  # traffic dries up
            delay.observe(batch_size=1, queue_depth=0, max_batch=64)
        assert delay.current() < 0.1 * 2e-3
        snap = delay.snapshot()
        assert snap["observations"] == 40
        assert 0 <= snap["fill"] <= 1

    def test_server_exposes_batching_state(self, toy):
        tree, x = toy
        with PolicyServer(max_batch=16, max_delay_s=2e-3,
                          adaptive_delay=True) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            server.predict("toy", x[:64])
            state = server.batching_state()
        assert state["adaptive"] is True
        assert state["observations"] > 0
        assert 0 <= state["delay_s"] <= 2e-3
        with PolicyServer(max_batch=16, max_delay_s=2e-3) as server:
            assert server.batching_state() == {
                "adaptive": False, "delay_s": 2e-3,
            }

    def test_adaptive_server_serves_correctly(self, toy):
        tree, x = toy
        with PolicyServer(max_batch=32, max_delay_s=2e-3,
                          adaptive_delay=True) as server:
            server.publish("toy", PolicyArtifact.from_tree(tree))
            out = server.predict("toy", x[:200])
        assert np.array_equal(out, tree.predict(x[:200]))


class TestLoadgenGeneratorRng:
    """Satellite: generators accept an explicit Generator and share one
    deterministic stream across successive calls."""

    def test_routing_states_shared_stream(self):
        from repro.serve.loadgen import routing_request_states

        rng = np.random.default_rng(42)
        first = routing_request_states(n_queries=64, seed=rng)
        second = routing_request_states(n_queries=64, seed=rng)
        # the stream advanced: two clients get distinct workloads
        assert not np.array_equal(first, second)
        # replaying the stream reproduces both exactly
        rng2 = np.random.default_rng(42)
        assert np.array_equal(
            routing_request_states(n_queries=64, seed=rng2), first
        )
        assert np.array_equal(
            routing_request_states(n_queries=64, seed=rng2), second
        )

    def test_flow_states_shared_stream(self):
        from repro.serve.loadgen import flow_request_states

        rng = np.random.default_rng(7)
        first = flow_request_states(duration_s=0.5, seed=rng, min_rows=32)
        second = flow_request_states(duration_s=0.5, seed=rng, min_rows=32)
        assert first.shape[1] == 12
        assert not np.array_equal(first, second)
        rng2 = np.random.default_rng(7)
        assert np.array_equal(
            flow_request_states(duration_s=0.5, seed=rng2, min_rows=32),
            first,
        )

    def test_abr_states_accept_generator(self):
        from repro.serve.loadgen import abr_request_states

        rng = np.random.default_rng(3)
        first = abr_request_states(n_sessions=2, n_chunks=8, seed=rng)
        assert first.shape[1] == 25
        rng2 = np.random.default_rng(3)
        assert np.array_equal(
            abr_request_states(n_sessions=2, n_chunks=8, seed=rng2), first
        )
