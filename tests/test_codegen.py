"""Tests for tree-to-code generation (the §6.4 on-device artifact)."""

import numpy as np
import pytest

from repro.core.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.core.tree.codegen import (
    compile_python,
    loc_estimate,
    tree_to_c,
    tree_to_python,
)


@pytest.fixture(scope="module")
def tree(toy_classification=None):
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (800, 4))
    y = ((x[:, 0] > 0.5) * 2 + (x[:, 1] > 0.3)).astype(int)
    return DecisionTreeClassifier(max_leaf_nodes=16).fit(x, y), x, y


class TestPythonCodegen:
    def test_generated_function_matches_predict(self, tree):
        model, x, y = tree
        fn = compile_python(model)
        preds = np.array([fn(row) for row in x[:200]])
        assert np.array_equal(preds, model.predict(x[:200]))

    def test_source_is_pure_branches(self, tree):
        model, _, _ = tree
        source = tree_to_python(model)
        assert "import" not in source
        assert "numpy" not in source
        assert source.count("return") == model.n_leaves

    def test_regressor_rejected(self):
        reg = DecisionTreeRegressor(max_leaf_nodes=4).fit(
            np.zeros((10, 2)), np.zeros(10)
        )
        with pytest.raises(TypeError):
            tree_to_python(reg)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            tree_to_python(DecisionTreeClassifier())


class TestCCodegen:
    def test_braces_balanced(self, tree):
        model, _, _ = tree
        source = tree_to_c(model)
        assert source.count("{") == source.count("}")

    def test_feature_comments(self, tree):
        model, _, _ = tree
        source = tree_to_c(model, feature_names=["aa", "bb", "cc", "dd"])
        assert "/* aa */" in source or "/* bb */" in source

    def test_returns_match_leaves(self, tree):
        model, _, _ = tree
        source = tree_to_c(model)
        assert source.count("return ") == model.n_leaves

    def test_loc_estimate_close_to_actual(self, tree):
        model, _, _ = tree
        actual = len(tree_to_c(model).splitlines())
        assert abs(loc_estimate(model) - actual) <= 5

    def test_kiloloc_scale_for_big_tree(self):
        # A 2000-leaf lRLA-sized tree lands in the ~1k-10k LoC range the
        # paper reports for the SmartNIC port.
        rng = np.random.default_rng(1)
        x = rng.normal(size=(6000, 12))
        y = rng.integers(0, 5, 6000)
        model = DecisionTreeClassifier(max_leaf_nodes=500).fit(x, y)
        assert 500 < loc_estimate(model) < 20_000
