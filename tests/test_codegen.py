"""Tests for tree-to-code generation (the §6.4 on-device artifact)."""

import ctypes
import subprocess

import numpy as np
import pytest

from repro.core.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.core.tree.cart import Node
from repro.core.tree.codegen import (
    compile_python,
    loc_estimate,
    tree_to_c,
    tree_to_python,
)
from repro.core.tree.native import find_compiler


@pytest.fixture(scope="module")
def tree(toy_classification=None):
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (800, 4))
    y = ((x[:, 0] > 0.5) * 2 + (x[:, 1] > 0.3)).astype(int)
    return DecisionTreeClassifier(max_leaf_nodes=16).fit(x, y), x, y


def _compile_decide(source, tmp_path, flags=("-O2",)):
    """Compile ``tree_to_c`` output with the platform compiler and hand
    back the ``int decide(const double *x)`` entry point via ctypes.

    The golden test for the on-device artifact: the emitted source must
    not just look like C, it must *be* C a stock toolchain accepts.
    """
    compiler = find_compiler()
    if compiler is None:
        pytest.skip("no C compiler on PATH")
    so = tmp_path / "decide.so"
    proc = subprocess.run(
        compiler + list(flags)
        + ["-shared", "-fPIC", "-o", str(so), "-x", "c", "-"],
        input=source.encode(),
        capture_output=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr.decode(errors="replace")
    lib = ctypes.CDLL(str(so))
    lib.decide.restype = ctypes.c_int
    lib.decide.argtypes = [ctypes.POINTER(ctypes.c_double)]

    def decide(row):
        row = np.ascontiguousarray(row, dtype=np.float64)
        return int(
            lib.decide(row.ctypes.data_as(ctypes.POINTER(ctypes.c_double)))
        )

    return decide


def _chain_root(depth: int) -> Node:
    """A pathological chain tree ``depth`` internal nodes deep."""
    root = Node(feature=0, threshold=0.5, value=np.array([1.0, 0.0]))
    cur = root
    for i in range(depth):
        cur.left = Node(value=np.array([1.0, 0.0]))
        last = i == depth - 1
        cur.right = Node(
            feature=-1 if last else 0,
            threshold=float(i) + 1.5,
            value=np.array([0.0, 1.0]),
        )
        cur = cur.right
    return root


class TestPythonCodegen:
    def test_generated_function_matches_predict(self, tree):
        model, x, y = tree
        fn = compile_python(model)
        preds = np.array([fn(row) for row in x[:200]])
        assert np.array_equal(preds, model.predict(x[:200]))

    def test_source_is_pure_branches(self, tree):
        model, _, _ = tree
        source = tree_to_python(model)
        assert "import" not in source
        assert "numpy" not in source
        assert source.count("return") == model.n_leaves

    def test_regressor_rejected(self):
        reg = DecisionTreeRegressor(max_leaf_nodes=4).fit(
            np.zeros((10, 2)), np.zeros(10)
        )
        with pytest.raises(TypeError):
            tree_to_python(reg)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            tree_to_python(DecisionTreeClassifier())


class TestCCodegen:
    def test_braces_balanced(self, tree):
        model, _, _ = tree
        source = tree_to_c(model)
        assert source.count("{") == source.count("}")

    def test_feature_comments(self, tree):
        model, _, _ = tree
        source = tree_to_c(model, feature_names=["aa", "bb", "cc", "dd"])
        assert "/* aa */" in source or "/* bb */" in source

    def test_returns_match_leaves(self, tree):
        model, _, _ = tree
        source = tree_to_c(model)
        assert source.count("return ") == model.n_leaves

    def test_loc_estimate_close_to_actual(self, tree):
        model, _, _ = tree
        actual = len(tree_to_c(model).splitlines())
        assert abs(loc_estimate(model) - actual) <= 5

    def test_golden_compile_matches_predict(self, tree, tmp_path):
        """The emitted C genuinely compiles and decides like the tree."""
        model, x, _ = tree
        decide = _compile_decide(tree_to_c(model), tmp_path)
        got = np.array([decide(row) for row in x[:200]])
        assert np.array_equal(got, model.predict(x[:200]))

    def test_golden_compile_single_leaf(self, tmp_path):
        model = DecisionTreeClassifier(n_classes=4, max_leaf_nodes=8).fit(
            np.zeros((20, 3)), np.full(20, 2, dtype=int)
        )
        assert model.n_leaves == 1
        decide = _compile_decide(tree_to_c(model), tmp_path)
        assert decide(np.zeros(3)) == 2

    def test_golden_compile_degenerate_chain(self, tmp_path):
        """A depth-2000 chain is the worst case for the nested if/else
        artifact (one brace pair per level) — it must still compile
        (at -O0; optimizing a 2000-deep branch nest is the compiler's
        pathology, not ours) and agree with the flat walk."""
        model = DecisionTreeClassifier(n_classes=2)
        model.root = _chain_root(2000)
        decide = _compile_decide(
            tree_to_c(model), tmp_path, flags=("-O0",)
        )
        flat = model.flat
        x = np.linspace(-5.0, 2005.0, 64).reshape(-1, 1)
        want = flat.value_argmax[flat.apply(x, backend="numpy")]
        got = np.array([decide(row) for row in x])
        assert np.array_equal(got, want)

    def test_kiloloc_scale_for_big_tree(self):
        # A 2000-leaf lRLA-sized tree lands in the ~1k-10k LoC range the
        # paper reports for the SmartNIC port.
        rng = np.random.default_rng(1)
        x = rng.normal(size=(6000, 12))
        y = rng.integers(0, 5, 6000)
        model = DecisionTreeClassifier(max_leaf_nodes=500).fit(x, y)
        assert 500 < loc_estimate(model) < 20_000
