"""Property-style equivalence: the vectorized FlatTree engine must match
the legacy node-walking traversal bit-for-bit.

The legacy walkers (``_leaf_values_nodes``, ``_apply_nodes``,
``_decision_path_length_nodes``) are kept in ``cart.py`` exactly as the
seed wrote them, as the oracle for these tests: random classification
and multi-output regression trees, weighted and unweighted, queried on
in-distribution rows, perturbed rows, and NaN-laced rows.
"""

import numpy as np
import pytest

from repro.core.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    prune_to_leaves,
    tree_from_dict,
    tree_to_dict,
)

SEEDS = [0, 1, 2, 3, 4]


def _queries(rng, n_features):
    """Query rows that stress the comparison semantics: training-like
    values, large perturbations, exact-threshold-ish ties, and NaNs."""
    q = rng.normal(size=(300, n_features))
    q[:40] *= 10.0
    q[40:60] = np.round(q[40:60], 1)  # encourage exact ties
    q[60:70, 0] = np.nan  # NaN compares false -> must go right
    return q


def _assert_engines_match(tree, q):
    assert np.array_equal(tree.apply(q), tree._apply_nodes(q))
    # predict_proba / leaf values must be bit-for-bit, not just close.
    assert np.array_equal(tree.predict_proba(q)
                          if isinstance(tree, DecisionTreeClassifier)
                          else tree._leaf_values(q),
                          tree._leaf_values_nodes(q))
    assert np.array_equal(
        tree.decision_path_length(q), tree._decision_path_length_nodes(q)
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("weighted", [False, True])
def test_classifier_equivalence(seed, weighted):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(500, 6))
    y = (
        (x[:, 0] > 0).astype(int) * 2
        + (x[:, 1] * x[:, 2] > 0.1).astype(int)
        + (x[:, 3] > 0.5).astype(int)
    )
    w = rng.uniform(0.1, 5.0, size=500) if weighted else None
    tree = DecisionTreeClassifier(max_leaf_nodes=64).fit(
        x, y, sample_weight=w
    )
    q = _queries(rng, 6)
    _assert_engines_match(tree, q)
    legacy_classes = np.argmax(tree._leaf_values_nodes(q), axis=1)
    assert np.array_equal(tree.predict(q), legacy_classes)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("weighted", [False, True])
def test_regressor_multi_output_equivalence(seed, weighted):
    rng = np.random.default_rng(100 + seed)
    x = rng.normal(size=(400, 5))
    y = np.stack(
        [np.sin(x[:, 0]), x[:, 1] * x[:, 2], np.abs(x[:, 3])], axis=1
    )
    w = rng.uniform(0.05, 2.0, size=400) if weighted else None
    tree = DecisionTreeRegressor(max_leaf_nodes=48).fit(
        x, y, sample_weight=w
    )
    q = _queries(rng, 5)
    _assert_engines_match(tree, q)
    assert np.array_equal(tree.predict(q), tree._leaf_values_nodes(q))


def test_pruned_tree_stays_equivalent(toy_classification):
    x, y = toy_classification
    tree = DecisionTreeClassifier(max_leaf_nodes=40).fit(x, y)
    pruned = prune_to_leaves(tree, 6)
    _assert_engines_match(pruned, x)
    # Pruning a copy must not desync the original's flat engine either.
    _assert_engines_match(tree, x)


def test_deserialized_tree_equivalent(toy_classification):
    x, y = toy_classification
    tree = DecisionTreeClassifier(max_leaf_nodes=16).fit(x, y)
    clone = tree_from_dict(tree_to_dict(tree))
    assert np.array_equal(clone.predict(x), tree.predict(x))
    assert np.array_equal(clone.apply(x), tree.apply(x))
    _assert_engines_match(clone, x)


def test_flat_ids_match_preorder(toy_classification):
    """Flat node ids are the legacy ``iter_nodes`` preorder ids."""
    x, y = toy_classification
    tree = DecisionTreeClassifier(max_leaf_nodes=16).fit(x, y)
    flat = tree.flat
    for i, node in enumerate(tree.iter_nodes()):
        expected = node.feature if not node.is_leaf else -1
        assert flat.feature[i] == expected
        assert flat.threshold[i] == node.threshold
        assert np.array_equal(flat.value[i], node.value)


def test_flat_structure_invariants(toy_classification):
    x, y = toy_classification
    flat = DecisionTreeClassifier(max_leaf_nodes=16).fit(x, y).flat
    internal = flat.feature >= 0
    assert np.all(flat.children_left[internal] > 0)
    assert np.all(flat.children_right[internal] > 0)
    assert np.all(flat.children_left[~internal] == -1)
    assert np.all(flat.children_right[~internal] == -1)
    assert flat.n_leaves + int(internal.sum()) == flat.node_count
    # Preorder: the left child immediately follows its parent.
    parents = np.nonzero(internal)[0]
    assert np.array_equal(flat.children_left[parents], parents + 1)


def test_deep_tree_uses_compacting_path():
    """A degenerate chain deeper than the dense-walk cutoff still
    matches the legacy traversal."""
    from repro.core.tree import Node

    depth = 200
    # Chain: node at level i splits on x[0] < i + 0.5; left is a leaf
    # predicting i, right continues down.
    root = Node(feature=0, threshold=0.5, value=np.array([0.0]))
    cur = root
    for i in range(depth):
        cur.left = Node(value=np.array([float(i)]))
        last = i == depth - 1
        cur.right = Node(
            feature=-1 if last else 0,
            threshold=float(i) + 1.5,
            value=np.array([float(i + 1)]),
        )
        cur = cur.right
    tree = DecisionTreeRegressor()
    tree.n_features = 1
    tree.n_outputs = 1
    tree.root = root
    assert tree.depth == depth  # deep enough for the compacting walk
    rng = np.random.default_rng(9)
    q = rng.uniform(-5.0, depth + 5.0, size=(300, 1))
    _assert_engines_match(tree, q)
    expected = np.clip(np.floor(q[:, 0] + 0.5), 0, depth)
    assert np.array_equal(tree.predict(q), expected)
