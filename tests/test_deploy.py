"""Tests for the deployment cost models and micro-benchmarks."""

import numpy as np
import pytest

from repro.core.tree import DecisionTreeClassifier
from repro.deploy import (
    SERVER_DNN,
    SERVER_TREE,
    SMARTNIC_TREE,
    DeviceProfile,
    decision_latency_dnn,
    decision_latency_tree,
    dnn_bundle_bytes,
    dnn_runtime_memory_bytes,
    measure_wallclock_latency,
    page_load_seconds,
    tree_bundle_bytes,
    tree_runtime_memory_bytes,
)
from repro.nn.mlp import MLP


@pytest.fixture(scope="module")
def fitted_tree(toy_classification=None):
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (500, 5))
    y = (x[:, 0] > 0.5).astype(int)
    return DecisionTreeClassifier(max_leaf_nodes=32).fit(x, y)


class TestDeviceProfile:
    def test_latency_affine(self):
        profile = DeviceProfile("test", overhead_s=1.0, per_op_s=0.5)
        assert profile.latency(4) == pytest.approx(3.0)

    def test_negative_ops_rejected(self):
        with pytest.raises(ValueError):
            SERVER_DNN.latency(-1)

    def test_dnn_much_slower_than_tree(self, fitted_tree):
        net = MLP(12, (64, 32), 5, seed=0)
        dnn = decision_latency_dnn(net, SERVER_DNN)
        tree = decision_latency_tree(fitted_tree, SERVER_TREE)
        assert dnn / tree > 10.0

    def test_smartnic_microseconds(self, fitted_tree):
        lat = decision_latency_tree(fitted_tree, SMARTNIC_TREE)
        assert lat < 1e-4

    def test_jitter_varies(self, fitted_tree):
        rng = np.random.default_rng(0)
        a = decision_latency_tree(fitted_tree, SERVER_TREE, jitter_rng=rng)
        b = decision_latency_tree(fitted_tree, SERVER_TREE, jitter_rng=rng)
        assert a != b


class TestResources:
    def test_dnn_bundle_dominated_by_runtime(self):
        net = MLP(25, (64, 32), 6, seed=0)
        assert dnn_bundle_bytes(net) > 1_000_000

    def test_tree_bundle_small(self, fitted_tree):
        assert tree_bundle_bytes(fitted_tree) < 10_000

    def test_bundle_ratio_large(self, fitted_tree):
        net = MLP(25, (64, 32), 6, seed=0)
        assert dnn_bundle_bytes(net) / tree_bundle_bytes(fitted_tree) > 50

    def test_page_load_linear_in_bytes(self):
        a = page_load_seconds(1_000_000, 1200.0)
        b = page_load_seconds(2_000_000, 1200.0)
        assert b == pytest.approx(2 * a)

    def test_page_load_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            page_load_seconds(1000, 0.0)

    def test_memory_models_ordered(self, fitted_tree):
        net = MLP(25, (64, 32), 6, seed=0)
        assert (
            dnn_runtime_memory_bytes(net)
            > tree_runtime_memory_bytes(fitted_tree)
        )


class TestWallclock:
    def test_measures_positive_latency(self, fitted_tree):
        states = np.random.default_rng(0).uniform(0, 1, (20, 5))
        lat = measure_wallclock_latency(
            lambda s: fitted_tree.predict_one(s[0]), states, repeats=50
        )
        assert lat > 0

    def test_tree_predict_one_fast(self, fitted_tree):
        # A single tree decision should be well under a millisecond.
        states = np.random.default_rng(0).uniform(0, 1, (20, 5))
        lat = measure_wallclock_latency(
            lambda s: fitted_tree.predict_one(s[0]), states, repeats=200
        )
        assert lat < 1e-3
