"""Equivalence and dispatch tests for the vectorized rollout engine.

The lockstep batch environment (``BatchABREnv``) and the batched
collection helpers must reproduce the serial per-episode loops **bit for
bit** under the same seed: identical observations, rewards, and dataset
row order.  ``collect_teacher_dataset`` / ``collect_student_states``
must route through the batch engine whenever both halves support it and
fall back to the scalar loop (including batched-only teachers queried
one row at a time) otherwise.
"""

import numpy as np
import pytest

from repro.config import MetisConfig
from repro.core.distill import distill_from_env
from repro.core.distill.rollout import (
    collect_student_states_batch,
    collect_teacher_dataset_batch,
)
from repro.core.distill.viper import (
    collect_student_states,
    collect_teacher_dataset,
)
from repro.envs.abr import ABREnv, BatchABREnv
from repro.utils.rng import as_rng


class _RuleTeacher:
    """Deterministic teacher: bitrate follows the buffer level."""

    n_actions = 6

    def act_greedy(self, state):
        return int(np.clip(state[1] / 5.0, 0, 5))

    def act_greedy_batch(self, states):
        return np.clip(states[:, 1] / 5.0, 0, 5).astype(int)


class _BatchOnlyTeacher:
    """Teacher exposing only the batched interface."""

    n_actions = 6

    def act_greedy_batch(self, states):
        return np.clip(states[:, 1] / 5.0, 0, 5).astype(int)


class _ScalarOnlyTeacher:
    n_actions = 6

    def act_greedy(self, state):
        return int(np.clip(state[1] / 5.0, 0, 5))


class _NoBatchEnv:
    """Env wrapper hiding ``as_batch`` (forces the scalar path)."""

    def __init__(self, env):
        self._env = env

    def reset(self, rng=None):
        return self._env.reset(rng)

    def step(self, action):
        return self._env.step(action)


# ----------------------------------------------------------------------
# batch environment vs serial environment
# ----------------------------------------------------------------------
class TestBatchABREnv:
    def test_fixed_action_trajectories_bit_identical(
        self, tiny_video, tiny_traces
    ):
        n_eps = 4
        serial_env = ABREnv(tiny_video, tiny_traces)
        rng = as_rng(11)
        serial_obs, serial_rewards = [], []
        for ep in range(n_eps):
            state = serial_env.reset(rng)
            done, step = False, 0
            while not done:
                serial_obs.append(state)
                state, reward, done, _ = serial_env.step((step + ep) % 6)
                serial_rewards.append(reward)
                step += 1

        batch = ABREnv(tiny_video, tiny_traces).as_batch(n_eps)
        obs = batch.reset(as_rng(11))
        batch_obs = [[] for _ in range(n_eps)]
        batch_rewards = [[] for _ in range(n_eps)]
        step = 0
        while not batch.done.all():
            live = ~batch.done
            actions = np.array([(step + ep) % 6 for ep in range(n_eps)])
            for ep in np.nonzero(live)[0]:
                batch_obs[ep].append(obs[ep])
            obs, rewards, _, _ = batch.step(actions)
            for ep in np.nonzero(live)[0]:
                batch_rewards[ep].append(rewards[ep])
            step += 1

        assert np.array_equal(
            np.asarray(serial_obs),
            np.concatenate([np.asarray(o) for o in batch_obs]),
        )
        assert np.array_equal(
            np.asarray(serial_rewards),
            np.concatenate([np.asarray(r) for r in batch_rewards]),
        )

    def test_finished_sessions_are_frozen(self, tiny_env):
        batch = tiny_env.as_batch(2)
        batch.reset(rng=0)
        n_chunks = tiny_env.video.n_chunks
        for _ in range(n_chunks):
            obs, rewards, done, _ = batch.step(np.zeros(2, dtype=int))
        assert done.all()
        frozen = obs.copy()
        obs2, rewards2, done2, _ = batch.step(np.zeros(2, dtype=int))
        assert np.array_equal(obs2, frozen)
        assert np.all(rewards2 == 0.0)
        assert done2.all()

    def test_step_before_reset_rejected(self, tiny_video, tiny_traces):
        batch = BatchABREnv(tiny_video, tiny_traces, n_envs=2)
        with pytest.raises(RuntimeError, match="reset"):
            batch.step(np.zeros(2, dtype=int))

    def test_bad_action_shape_rejected(self, tiny_env):
        batch = tiny_env.as_batch(3)
        batch.reset(rng=0)
        with pytest.raises(ValueError, match="shape"):
            batch.step(np.zeros(2, dtype=int))

    def test_out_of_range_action_rejected(self, tiny_env):
        batch = tiny_env.as_batch(2)
        batch.reset(rng=0)
        with pytest.raises(ValueError, match="range"):
            batch.step(np.array([0, 99]))


# ----------------------------------------------------------------------
# batched collection vs the serial loops
# ----------------------------------------------------------------------
class TestBatchedCollection:
    def test_teacher_dataset_matches_scalar_loop(self, tiny_env):
        teacher = _RuleTeacher()
        scalar = collect_teacher_dataset(
            _NoBatchEnv(tiny_env), teacher, 5, rng=3
        )
        batched = collect_teacher_dataset(tiny_env, teacher, 5, rng=3)
        assert np.array_equal(scalar.states, batched.states)
        assert np.array_equal(scalar.actions, batched.actions)

    def test_student_states_match_scalar_loop(self, tiny_env):
        student = distill_from_env(
            tiny_env,
            _RuleTeacher(),
            MetisConfig(leaf_nodes=20, dagger_iterations=1, resample=False),
            episodes_per_iteration=3,
            seed=0,
        )
        scalar = collect_student_states(
            _NoBatchEnv(tiny_env), student, 4, rng=7
        )
        batched = collect_student_states(tiny_env, student, 4, rng=7)
        assert np.array_equal(scalar, batched)

    def test_dispatch_uses_batch_engine(self, tiny_env):
        teacher = _RuleTeacher()
        direct = collect_teacher_dataset_batch(tiny_env, teacher, 3, rng=9)
        routed = collect_teacher_dataset(tiny_env, teacher, 3, rng=9)
        assert np.array_equal(direct.states, routed.states)
        assert np.array_equal(direct.actions, routed.actions)

    def test_batch_only_teacher_works_on_scalar_path(self, tiny_env):
        """A teacher with only ``act_greedy_batch`` must still collect on
        a non-batchable env (queried one row at a time)."""
        ds = collect_teacher_dataset(
            _NoBatchEnv(tiny_env), _BatchOnlyTeacher(), 2, rng=1
        )
        assert len(ds) == 2 * tiny_env.video.n_chunks
        reference = collect_teacher_dataset(
            tiny_env, _BatchOnlyTeacher(), 2, rng=1
        )
        assert np.array_equal(ds.states, reference.states)
        assert np.array_equal(ds.actions, reference.actions)

    def test_scalar_only_teacher_falls_back(self, tiny_env):
        """No batched query at all: the per-step loop must still run."""
        ds = collect_teacher_dataset(tiny_env, _ScalarOnlyTeacher(), 2, rng=1)
        assert len(ds) == 2 * tiny_env.video.n_chunks
        reference = collect_teacher_dataset(tiny_env, _RuleTeacher(), 2, rng=1)
        assert np.array_equal(ds.states, reference.states)
        assert np.array_equal(ds.actions, reference.actions)

    def test_student_batch_helper_orders_episode_major(self, tiny_env):
        student = distill_from_env(
            tiny_env,
            _RuleTeacher(),
            MetisConfig(leaf_nodes=16, dagger_iterations=1, resample=False),
            episodes_per_iteration=2,
            seed=2,
        )
        states = collect_student_states_batch(tiny_env, student, 3, rng=5)
        n_chunks = tiny_env.video.n_chunks
        assert states.shape == (3 * n_chunks, 25)
        # Episode boundaries restart the chunks-left counter at 1.0.
        chunks_left = states[:, -1]
        starts = np.nonzero(chunks_left == 1.0)[0]
        assert list(starts) == [0, n_chunks, 2 * n_chunks]

    def test_distill_loop_runs_through_batch_engine(self, tiny_env):
        """End-to-end DAgger with batching everywhere still converges."""
        teacher = _RuleTeacher()
        student = distill_from_env(
            tiny_env,
            teacher,
            MetisConfig(leaf_nodes=50, dagger_iterations=2, resample=False),
            episodes_per_iteration=6,
            seed=0,
        )
        ds = collect_teacher_dataset(tiny_env, teacher, 3, rng=9)
        agreement = (student.act_greedy_batch(ds.states) == ds.actions).mean()
        assert agreement > 0.9
