"""Tests for the sharded multi-process serving tier (repro.serve.cluster)."""

import numpy as np
import pytest

from repro.core.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.serve import PolicyArtifact
from repro.serve.cluster import (
    ShardedPolicyService,
    load_shared_artifact,
    share_artifact,
)
from repro.serve.cluster.shm import ShmArtifactHandle


@pytest.fixture(scope="module")
def toy():
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (800, 5))
    y = (x[:, 0] > 0.5).astype(int) * 2 + (x[:, 2] > 0.4).astype(int)
    tree = DecisionTreeClassifier(max_leaf_nodes=32).fit(x, y)
    return tree, x


@pytest.fixture(scope="module", params=["pipe", "socket"])
def transport(request):
    """Every service-level test runs against both worker transports:
    the multiprocessing pipe (the zero-regression default) and the
    localhost TCP socket (the wire protocol's stream path)."""
    return request.param


@pytest.fixture(scope="module")
def service(toy, transport):
    """One shared 2-shard service for the read-only tests (spawning
    processes per test would dominate the suite's runtime)."""
    tree, x = toy
    with ShardedPolicyService(n_shards=2, max_delay_s=1e-3,
                              transport=transport) as svc:
        svc.publish("toy", PolicyArtifact.from_tree(tree, name="toy"),
                    alias="toy/prod")
        yield svc


class TestSharedMemoryTransport:
    def test_roundtrip_is_exact_and_zero_copy(self, toy):
        tree, x = toy
        artifact = PolicyArtifact.from_tree(tree, name="toy")
        handle, shm = share_artifact(artifact)
        try:
            assert isinstance(handle, ShmArtifactHandle)
            rebuilt, mapped = load_shared_artifact(handle)
            try:
                # same hash == same content, byte for byte
                assert rebuilt.content_hash == artifact.content_hash
                assert rebuilt.n_features == artifact.n_features
                assert rebuilt.kind == artifact.kind
                assert np.array_equal(
                    rebuilt.predict_batch(x), tree.predict(x)
                )
                # genuinely zero-copy: the views live on the segment
                assert rebuilt.flat.feature.base is not None
                assert not rebuilt.flat.feature.flags.writeable
            finally:
                mapped.close()
        finally:
            shm.close()
            shm.unlink()

    def test_corrupted_segment_refuses_to_serve(self, toy):
        tree, _ = toy
        artifact = PolicyArtifact.from_tree(tree, name="toy")
        handle, shm = share_artifact(artifact)
        try:
            # flip one byte of the threshold array
            spec = next(s for s in handle.arrays if s.field == "threshold")
            shm.buf[spec.offset] = (shm.buf[spec.offset] + 1) % 256
            with pytest.raises(RuntimeError, match="hash"):
                load_shared_artifact(handle)
        finally:
            shm.close()
            shm.unlink()

    def test_corrupted_statistics_also_refuse(self, toy):
        """n_samples/impurity are outside the decision-identity content
        hash; the transport hash must still catch tearing there."""
        tree, _ = toy
        artifact = PolicyArtifact.from_tree(tree, name="toy")
        handle, shm = share_artifact(artifact)
        try:
            spec = next(s for s in handle.arrays if s.field == "impurity")
            shm.buf[spec.offset] = (shm.buf[spec.offset] + 1) % 256
            with pytest.raises(RuntimeError, match="transport-hash"):
                load_shared_artifact(handle)
        finally:
            shm.close()
            shm.unlink()

    def test_regressor_artifacts_share_too(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, (300, 3))
        y = np.stack([x[:, 0] > 0, x[:, 1] * 2.0], axis=1)
        tree = DecisionTreeRegressor(max_leaf_nodes=16).fit(x, y)
        artifact = PolicyArtifact.from_tree(tree, name="reg")
        handle, shm = share_artifact(artifact)
        try:
            rebuilt, mapped = load_shared_artifact(handle)
            try:
                assert np.allclose(rebuilt.predict_batch(x), tree.predict(x))
            finally:
                mapped.close()
        finally:
            shm.close()
            shm.unlink()

    def test_non_tree_artifact_rejected(self):
        art = PolicyArtifact(
            name="fn", kind="function", n_features=2, n_outputs=2,
            predict_batch=lambda s: np.zeros(s.shape[0]),
            content_hash="0" * 16,
        )
        with pytest.raises(TypeError, match="flat arrays"):
            share_artifact(art)


class TestShardedService:
    def test_per_request_path_matches_tree(self, service, toy):
        tree, x = toy
        futures = [service.submit("toy/prod", row) for row in x[:64]]
        results = [f.result(timeout=30) for f in futures]
        assert all(r.ok and r.model == "toy" and r.version == 1
                   for r in results)
        assert np.array_equal(
            [r.action for r in results], tree.predict(x[:64])
        )

    def test_bulk_path_matches_tree(self, service, toy):
        tree, x = toy
        out = service.predict("toy", x)
        assert np.array_equal(out, tree.predict(x))

    def test_structured_errors_cross_process(self, service, toy):
        _, x = toy
        nan = service.submit("toy", np.full(5, np.nan)).result(30)
        assert (nan.ok, nan.error) == (False, "non_finite")
        ghost = service.submit("ghost", x[0]).result(30)
        assert (ghost.ok, ghost.error) == (False, "unknown_model")
        shape = service.submit("toy", np.ones(3)).result(30)
        assert (shape.ok, shape.error) == (False, "bad_shape")
        text = service.submit("toy", ["a", "b", "c", "d", "e"]).result(30)
        assert text.error in ("bad_input", "bad_shape")
        # the shards survived: valid traffic still flows
        ok = service.submit("toy", x[0]).result(30)
        assert ok.ok

    def test_poisoned_row_fails_alone_in_bulk(self, service, toy):
        tree, x = toy
        states = x[:8].copy()
        states[3, 2] = np.nan
        results = service.predict_batch("toy", states)
        assert [r.ok for r in results] == [
            True, True, True, False, True, True, True, True
        ]
        assert results[3].error == "non_finite"
        good = [r.action for i, r in enumerate(results) if i != 3]
        expected = tree.predict(np.delete(states, 3, axis=0))
        assert np.array_equal(good, expected)

    def test_requests_spread_across_shards(self, service, toy):
        _, x = toy
        service.predict("toy", x)
        view = service.cluster_metrics()
        assert view["n_shards"] == 2 and view["live_shards"] == 2
        per_shard = [
            shard["models"].get("toy", {}).get("requests", 0)
            for shard in view["shards"]
        ]
        assert all(count > 0 for count in per_shard)
        agg = view["aggregate"]["toy"]
        assert agg["requests"] == sum(per_shard)
        # cluster-level view saw every request the shards served
        assert view["cluster"]["toy"]["requests"] >= agg["requests"]

    def test_metrics_latency_shape(self, service):
        stats = service.metrics()["toy"]
        lat = stats["latency_ms"]
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"]
        assert stats["throughput_rps"] > 0

    def test_backend_report_spans_shards(self, service, toy):
        import os

        from repro.core.tree import native

        _, x = toy
        service.predict("toy", x)
        report = service.cluster_metrics()["backend"]
        assert set(report["per_shard"]) == {"0", "1"}
        toy_view = report["models"]["toy"]
        served = toy_view["native_rows"] + toy_view["numpy_rows"]
        assert served >= x.shape[0]
        # Workers inherit REPRO_TREE_BACKEND, so what the report must
        # say depends on how this suite was launched: pinned to numpy
        # it is an operator choice (label "numpy", zero fallbacks);
        # otherwise a toolchain means compiled kernels everywhere and
        # no toolchain means every row is a *visible* fallback.  In
        # all three cases: no exceptions, full row accounting.
        if os.environ.get("REPRO_TREE_BACKEND") == "numpy":
            assert toy_view["backend"] == "numpy"
            assert toy_view["fallback_rows"] == 0
        elif native.find_compiler() is not None:
            assert toy_view["backend"] == "native"
            assert toy_view["fallback_rows"] == 0
            assert toy_view["native_rows"] >= x.shape[0]
        else:
            assert toy_view["backend"] == "numpy-fallback"
            assert toy_view["fallback_rows"] >= x.shape[0]

    def test_retire_propagates_to_shards(self, toy, transport):
        tree, x = toy
        artifact = PolicyArtifact.from_tree(tree, name="m")
        with ShardedPolicyService(n_shards=2, transport=transport) as svc:
            svc.publish("m", artifact)
            svc.publish("m", artifact)
            assert svc.submit("m@1", x[0]).result(30).ok
            with pytest.raises(ValueError, match="latest"):
                svc.retire("m", 2)
            assert set(svc._segments) == {("m", 1), ("m", 2)}
            svc.retire("m", 1)
            # the retired version's shared segment was released, the
            # survivor's kept
            assert set(svc._segments) == {("m", 2)}
            gone = svc.submit("m@1", x[0]).result(30)
            assert (gone.ok, gone.error) == (False, "unknown_model")
            assert svc.submit("m@2", x[0]).result(30).ok
            assert np.array_equal(
                svc.predict("m", x[:16]), tree.predict(x[:16])
            )

    def test_hash_routing_is_sticky(self, toy):
        tree, x = toy
        with ShardedPolicyService(n_shards=2, routing="hash") as svc:
            svc.publish("toy", PolicyArtifact.from_tree(tree))
            row = x[0]
            results = [
                svc.submit("toy", row).result(30) for _ in range(10)
            ]
            assert all(r.ok for r in results)
            view = svc.cluster_metrics()
            served = [
                shard["models"].get("toy", {}).get("requests", 0)
                for shard in view["shards"]
            ]
            # the same state always hashes to the same shard
            assert sorted(served) == [0, 10]

    def test_close_completes_pending_and_rejects_new(self, toy, transport):
        tree, x = toy
        svc = ShardedPolicyService(n_shards=2, max_delay_s=1e-3,
                                   transport=transport)
        svc.publish("toy", PolicyArtifact.from_tree(tree))
        futures = [svc.submit("toy", row) for row in x[:40]]
        bulk = svc.submit_batch("toy", x[:32])
        svc.close()
        results = [f.result(timeout=10) for f in futures]
        assert all(r.ok for r in results)  # zero dropped futures
        assert all(r.ok for r in bulk.result(timeout=10))
        with pytest.raises(RuntimeError):
            svc.submit("toy", x[0])
        with pytest.raises(RuntimeError):
            svc.submit_batch("toy", x[:4])
        svc.close()  # idempotent

    def test_bulk_failures_attribute_the_requested_model(self, toy):
        """Bulk-path failures must carry the requested reference in
        results and metrics, never a placeholder."""
        tree, x = toy
        with ShardedPolicyService(n_shards=1, max_delay_s=1e-3) as svc:
            svc.publish("toy", PolicyArtifact.from_tree(tree))
            svc._shards[0].process.terminate()
            svc._shards[0].process.join(timeout=10)
            results = None
            for _ in range(50):
                results = svc.submit_batch("toy", x[:8]).result(30)
                if not results[0].ok:
                    break
            assert results is not None and not results[0].ok
            assert all(r.error == "shard_error" for r in results)
            assert all(r.model == "toy" for r in results)
            metrics = svc.metrics()
            assert "bulk" not in metrics
            assert metrics["toy"]["error_kinds"]["shard_error"] >= 8

    def test_worker_death_fails_futures_not_hangs(self, toy, transport):
        tree, x = toy
        with ShardedPolicyService(n_shards=2, max_delay_s=1e-3,
                                  transport=transport) as svc:
            svc.publish("toy", PolicyArtifact.from_tree(tree))
            assert svc.predict("toy", x[:16]).shape == (16,)
            # murder one shard mid-flight
            victim = svc._shards[0]
            victim.process.terminate()
            victim.process.join(timeout=10)
            deadline = 100
            while victim.alive and deadline:
                import time
                time.sleep(0.05)
                deadline -= 1
            # traffic keeps flowing on the survivor
            results = [
                svc.submit("toy", row).result(timeout=30) for row in x[:32]
            ]
            assert all(r.ok for r in results)
            view = svc.cluster_metrics()
            assert view["live_shards"] == 1

    def test_unpicklable_artifact_fails_cleanly(self, toy):
        """A caller's unshippable artifact must not kill a healthy
        shard or desync the registry replicas."""
        tree, x = toy
        art = PolicyArtifact(
            name="fn", kind="function", n_features=2, n_outputs=2,
            predict_batch=lambda s: np.zeros(s.shape[0]),
            content_hash="0" * 16,
        )
        with ShardedPolicyService(n_shards=1) as svc:
            with pytest.raises(TypeError, match="pickle"):
                svc.publish("fn", art)
            # the shard survived and the replicas stayed in sync: a
            # follow-up publish works and serves
            assert svc.cluster_metrics()["live_shards"] == 1
            assert svc.publish("toy", PolicyArtifact.from_tree(tree)) == 1
            assert np.array_equal(
                svc.predict("toy", x[:16]), tree.predict(x[:16])
            )
            # the rejected name was never registered anywhere
            assert "fn" not in svc.registry

    def test_teacher_artifact_pickles_to_shards(self, transport):
        from repro.envs.abr.env import STATE_DIM
        from repro.nn.policy import SoftmaxPolicy, ValueNet
        from repro.teachers.pensieve import PensieveTeacher
        from repro.utils.rng import as_rng

        teacher = PensieveTeacher(
            policy=SoftmaxPolicy(STATE_DIM, 6, hidden=(8,), seed=as_rng(0)),
            value=ValueNet(STATE_DIM, seed=as_rng(0)),
        )
        artifact = PolicyArtifact.from_teacher(teacher, n_features=STATE_DIM)
        states = np.abs(
            np.random.default_rng(3).normal(size=(20, STATE_DIM))
        )
        with ShardedPolicyService(n_shards=2, transport=transport) as svc:
            svc.publish("teacher", artifact)
            out = svc.predict("teacher", states)
        assert np.array_equal(out, teacher.act_greedy_batch(states))


class TestSocketTransport:
    """Behaviors specific to the TCP wire path: the host-level
    artifact cache and the out-of-band worker client."""

    def test_transport_metrics_and_endpoints(self, toy):
        tree, _ = toy
        with ShardedPolicyService(n_shards=2, transport="socket") as svc:
            svc.publish("m", PolicyArtifact.from_tree(tree, name="m"))
            view = svc.cluster_metrics()["transport"]
            assert view["name"] == "socket"
            assert all(per["bytes_sent"] > 0 and per["bytes_received"] > 0
                       for per in view["per_shard"].values())
            assert view["host_cache"] == {"keys": 1,
                                          "hosts": ["127.0.0.1"]}
            endpoints = svc.worker_endpoints()
            assert set(endpoints) == {0, 1}
            assert all(host == "127.0.0.1" and port > 0
                       for host, port in endpoints.values())

    def test_pipe_has_no_endpoints_or_cache(self, toy):
        tree, _ = toy
        with ShardedPolicyService(n_shards=1, transport="pipe") as svc:
            svc.publish("m", PolicyArtifact.from_tree(tree, name="m"))
            assert svc.worker_endpoints() == {}
            view = svc.cluster_metrics()["transport"]
            assert view["name"] == "pipe"
            assert view["host_cache"] == {"keys": 0, "hosts": []}

    def test_second_publish_of_same_artifact_ships_zero_bytes(self, toy):
        """The host-level artifact cache: an artifact's bytes cross
        the wire once per (host, content); a second publish of the
        same tree ships only small control frames."""
        _, x = toy
        # A deep tree, so the segment image dwarfs a control frame and
        # the byte counters separate cleanly.
        rng = np.random.default_rng(1)
        y = rng.integers(0, 4, len(x))
        tree = DecisionTreeClassifier(max_leaf_nodes=256).fit(x, y)
        artifact = PolicyArtifact.from_tree(tree, name="m")
        with ShardedPolicyService(n_shards=2, transport="socket") as svc:
            svc.publish("m", artifact)
            sent_after_first = {
                shard.shard_id: shard.transport.bytes_sent
                for shard in svc._shards
            }
            # Exactly one shard carried the payload bytes (the full
            # shared-segment image) on top of the control frame; its
            # sibling on the same host attached by segment name.  The
            # control frame itself (handle + provenance) is shipped to
            # every shard, so discriminate on the *spread*.
            segment_size = svc._segments[("m", 1)].size
            frame_only = min(sent_after_first.values())
            spread = max(sent_after_first.values()) - frame_only
            assert spread >= segment_size, (sent_after_first, segment_size)
            svc.publish("m2", PolicyArtifact.from_tree(tree, name="m2"))
            deltas = {
                shard.shard_id:
                    shard.transport.bytes_sent
                    - sent_after_first[shard.shard_id]
                for shard in svc._shards
            }
            # same flat arrays -> same wire key -> cache hit on every
            # shard: only the publish control frame moves, never the
            # artifact image again.
            assert all(
                delta <= frame_only + segment_size // 2
                for delta in deltas.values()
            ), (deltas, frame_only, segment_size)
            assert svc.cluster_metrics()["transport"]["host_cache"][
                "keys"] == 1

    def test_retire_releases_cache_segment(self, toy):
        from multiprocessing import shared_memory

        from repro.serve.cluster.shm import host_cache_segment_name

        tree, x = toy
        artifact = PolicyArtifact.from_tree(tree, name="m")
        with ShardedPolicyService(n_shards=1, transport="socket") as svc:
            svc.publish("m", artifact)
            svc.publish("m", PolicyArtifact.from_tree(
                DecisionTreeClassifier(max_leaf_nodes=4).fit(
                    x, (x[:, 0] > 0.5).astype(int)
                ), name="m",
            ))
            assert len(svc._cache_refs) == 2
            key = svc._version_keys[("m", 1)]
            name = host_cache_segment_name(svc._cache_token, key)
            seg = shared_memory.SharedMemory(name=name)
            seg.close()
            svc.retire("m", 1)
            assert len(svc._cache_refs) == 1
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
            # the survivor still serves
            assert svc.submit("m", x[0]).result(30).ok

    def test_async_worker_client_reads_live_worker(self, toy):
        import asyncio

        from repro.serve.aio import AsyncWorkerClient

        tree, x = toy
        with ShardedPolicyService(n_shards=2, transport="socket") as svc:
            svc.publish("m", PolicyArtifact.from_tree(tree, name="m"))
            parent_digest = svc.replica_states()["parent"]["digest"]
            shard_id, (host, port) = next(
                iter(svc.worker_endpoints().items())
            )

            async def probe():
                client = await AsyncWorkerClient.connect(host, port)
                try:
                    pong = await client.ping()
                    state = await client.describe()
                    reply = await client.predict("m", x[:4])
                finally:
                    await client.close()
                return pong, state, reply

            pong, state, reply = asyncio.run(probe())
            assert pong == ("pong", shard_id)
            # the out-of-band view matches the parent's lockstep state
            assert state["digest"] == parent_digest
            groups = reply["groups"]
            assert len(groups) == 1 and not reply["errors"]
            name, version, idx, actions = groups[0]
            assert (name, version) == ("m", 1)
            assert np.array_equal(actions, tree.predict(x[:4]))
            # the parent's own connection still works afterwards
            assert svc.submit("m", x[0]).result(30).ok


class TestFig16ClusterMode:
    def test_cluster_serving_table(self):
        """The fig16 cluster table end to end with a small flow policy
        (auto_lab is bypassed — only the serving path is under test)."""
        from repro.core.tree import DecisionTreeClassifier
        from repro.experiments.fig16_latency_coverage import (
            _cluster_serving_table,
        )
        from repro.serve.loadgen import flow_request_states

        states = flow_request_states(duration_s=0.5, seed=3, min_rows=64)
        labels = (states[:, 0] > np.median(states[:, 0])).astype(int)
        tree = DecisionTreeClassifier(max_leaf_nodes=16).fit(
            states, labels
        )
        table, metrics = _cluster_serving_table(tree, fast=True)
        assert metrics["cluster_errors"] == 0
        assert metrics["cluster_shards"] == 2
        assert metrics["cluster_bulk_throughput_rps"] > 0
        assert metrics["cluster_aggregate_shard_rps"] > 0
        rendered = table.render()
        assert "closed-loop" in rendered and "bulk" in rendered

    def test_run_experiment_forwards_supported_options(self):
        """The CLI plumbing only forwards options an experiment's run()
        accepts (fig16 takes serve/cluster; fig7 takes neither)."""
        import inspect

        from repro.experiments import REGISTRY
        import importlib

        fig16 = importlib.import_module(REGISTRY["fig16"])
        params = inspect.signature(fig16.run).parameters
        assert "serve" in params and "cluster" in params
        fig7 = importlib.import_module(REGISTRY["fig7"])
        assert "cluster" not in inspect.signature(fig7.run).parameters
        # forwarding an unsupported option must not TypeError the run
        # (it is silently dropped) — prove via the filter logic itself
        from repro.experiments import run_experiment
        with pytest.raises(KeyError):
            run_experiment("nope", cluster=True)


class TestClusterLatencyReport:
    def test_rows_next_to_modeled(self, toy):
        from repro.deploy import cluster_latency_report

        tree, x = toy
        with ShardedPolicyService(n_shards=2) as svc:
            svc.publish("toy", PolicyArtifact.from_tree(tree))
            svc.predict("toy", x[:128])
            rows = cluster_latency_report(svc, "toy", tree=tree)
        sources = [r["source"] for r in rows]
        assert sources[0] == "measured-cluster"
        assert "aggregate-shards" in sources
        assert any(s.startswith("shard-") for s in sources)
        assert sources.count("modeled") == 2  # server-tree + smartnic
        measured = rows[0]
        assert measured["requests"] == 128
        assert measured["p50_ms"] > 0
        agg = next(r for r in rows if r["source"] == "aggregate-shards")
        assert agg["requests"] == 128
        assert agg["throughput_rps"] > 0
        with pytest.raises(KeyError):
            cluster_latency_report({"cluster": {}, "aggregate": {},
                                    "shards": []}, "missing")
