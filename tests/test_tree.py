"""Tests for CART trees, CCP pruning, and export."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    Node,
    cost_complexity_path,
    prune_to_leaves,
    render_text,
    tree_from_dict,
    tree_to_dict,
)


class TestClassifier:
    def test_solves_axis_aligned(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=8).fit(x, y)
        assert (tree.predict(x) == y).mean() == 1.0

    def test_probabilities_sum_one(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=8).fit(x, y)
        p = tree.predict_proba(x)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_leaf_budget_respected(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=3).fit(x, y)
        assert tree.n_leaves <= 3

    def test_max_depth_respected(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=64, max_depth=2)
        tree.fit(x, y)
        assert tree.depth <= 2

    def test_sample_weights_steer_fit(self, toy_classification):
        x, y = toy_classification
        # Weight one class overwhelmingly: the stump must predict it.
        w = np.where(y == 3, 1000.0, 0.001)
        tree = DecisionTreeClassifier(max_leaf_nodes=2).fit(
            x, y, sample_weight=w
        )
        assert (tree.predict(x) == 3).mean() > 0.4

    def test_min_samples_leaf(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(
            max_leaf_nodes=200, min_samples_leaf=50
        ).fit(x, y)
        for node in tree.iter_nodes():
            if node.is_leaf:
                assert node.n_samples >= 50

    def test_explicit_n_classes(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        tree = DecisionTreeClassifier(n_classes=5, max_leaf_nodes=2)
        tree.fit(x, y)
        assert tree.predict_proba(x).shape == (2, 5)

    def test_labels_out_of_range_rejected(self):
        tree = DecisionTreeClassifier(n_classes=2)
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3, 1)), np.array([0, 1, 5]))

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.array([]))

    def test_negative_weights_rejected(self, toy_classification):
        x, y = toy_classification
        with pytest.raises(ValueError, match="non-negative"):
            DecisionTreeClassifier().fit(x, y, sample_weight=-np.ones(len(y)))

    def test_all_zero_weights_rejected(self, toy_classification):
        x, y = toy_classification
        with pytest.raises(ValueError, match="all be zero"):
            DecisionTreeClassifier().fit(x, y, sample_weight=np.zeros(len(y)))

    def test_nan_weights_rejected(self, toy_classification):
        x, y = toy_classification
        w = np.ones(len(y))
        w[3] = np.nan
        with pytest.raises(ValueError, match="finite"):
            DecisionTreeClassifier().fit(x, y, sample_weight=w)

    def test_weight_shape_mismatch_rejected(self, toy_classification):
        x, y = toy_classification
        with pytest.raises(ValueError, match="rows"):
            DecisionTreeClassifier().fit(
                x, y, sample_weight=np.ones(len(y) + 5)
            )

    def test_constant_features_yield_stump(self):
        x = np.ones((50, 3))
        y = np.array([0, 1] * 25)
        tree = DecisionTreeClassifier(max_leaf_nodes=10).fit(x, y)
        assert tree.n_leaves == 1

    def test_predict_one_matches_predict(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=16).fit(x, y)
        batch = tree.predict_proba(x[:10])
        for i in range(10):
            assert np.allclose(tree.predict_one(x[i]), batch[i])

    @given(st.integers(2, 40))
    @settings(max_examples=15, deadline=None)
    def test_leaf_budget_property(self, budget):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        tree = DecisionTreeClassifier(max_leaf_nodes=budget).fit(x, y)
        assert 1 <= tree.n_leaves <= budget

    def test_predictions_are_seen_labels(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=32).fit(x, y)
        assert set(np.unique(tree.predict(x))) <= set(np.unique(y))


class TestRegressor:
    def test_single_output(self, toy_regression):
        x, y = toy_regression
        tree = DecisionTreeRegressor(max_leaf_nodes=32).fit(x, y[:, 0])
        pred = tree.predict(x)
        assert pred.shape == (x.shape[0],)
        assert np.sqrt(((pred - y[:, 0]) ** 2).mean()) < 0.2

    def test_multi_output(self, toy_regression):
        x, y = toy_regression
        tree = DecisionTreeRegressor(max_leaf_nodes=32).fit(x, y)
        pred = tree.predict(x)
        assert pred.shape == y.shape

    def test_predictions_within_target_hull(self, toy_regression):
        x, y = toy_regression
        tree = DecisionTreeRegressor(max_leaf_nodes=16).fit(x, y)
        pred = tree.predict(x)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    def test_stump_predicts_mean(self, toy_regression):
        x, y = toy_regression
        tree = DecisionTreeRegressor(max_leaf_nodes=2, min_samples_leaf=10**6)
        tree.fit(x, y)
        assert np.allclose(tree.predict(x)[0], y.mean(axis=0))

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_hull_property(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(60, 3))
        y = rng.normal(size=60)
        tree = DecisionTreeRegressor(max_leaf_nodes=8).fit(x, y)
        pred = tree.predict(x)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9


class TestPruning:
    def _fitted(self, toy_classification):
        x, y = toy_classification
        noisy = y.copy()
        noisy[::17] = (noisy[::17] + 1) % 4
        return DecisionTreeClassifier(max_leaf_nodes=40).fit(x, noisy), x, noisy

    def test_path_starts_at_zero_alpha(self, toy_classification):
        tree, _, _ = self._fitted(toy_classification)
        path = cost_complexity_path(tree)
        assert path[0][0] == 0.0
        assert path[0][1] == tree.n_leaves

    def test_path_ends_at_stump(self, toy_classification):
        tree, _, _ = self._fitted(toy_classification)
        path = cost_complexity_path(tree)
        assert path[-1][1] == 1

    def test_path_leaves_decreasing(self, toy_classification):
        tree, _, _ = self._fitted(toy_classification)
        leaves = [n for _, n in cost_complexity_path(tree)]
        assert all(a > b for a, b in zip(leaves, leaves[1:]))

    def test_prune_to_budget(self, toy_classification):
        tree, x, y = self._fitted(toy_classification)
        pruned = prune_to_leaves(tree, 5)
        assert pruned.n_leaves <= 5

    def test_prune_does_not_mutate_original(self, toy_classification):
        tree, _, _ = self._fitted(toy_classification)
        before = tree.n_leaves
        prune_to_leaves(tree, 2)
        assert tree.n_leaves == before

    def test_prune_keeps_strong_structure(self, toy_classification):
        # The 4-leaf pruned tree should still solve the clean problem.
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=40).fit(x, y)
        pruned = prune_to_leaves(tree, 4)
        assert (pruned.predict(x) == y).mean() > 0.95

    def test_prune_budget_one_gives_stump(self, toy_classification):
        tree, _, _ = self._fitted(toy_classification)
        assert prune_to_leaves(tree, 1).n_leaves == 1

    def test_invalid_budget(self, toy_classification):
        tree, _, _ = self._fitted(toy_classification)
        with pytest.raises(ValueError):
            prune_to_leaves(tree, 0)


class TestExport:
    def test_render_contains_feature_names(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=8).fit(x, y)
        text = render_text(tree, feature_names=["buffer", "b", "rate", "d", "e"])
        assert "buffer" in text or "rate" in text

    def test_render_visit_fractions(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=8).fit(x, y)
        text = render_text(tree, visit_states=x, max_depth=2)
        assert "visits 100.0%" in text

    def test_render_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            render_text(DecisionTreeClassifier())

    def test_dict_roundtrip_classifier(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=16).fit(x, y)
        clone = tree_from_dict(tree_to_dict(tree))
        assert np.array_equal(clone.predict(x), tree.predict(x))

    def test_dict_roundtrip_regressor(self, toy_regression):
        x, y = toy_regression
        tree = DecisionTreeRegressor(max_leaf_nodes=16).fit(x, y)
        clone = tree_from_dict(tree_to_dict(tree))
        assert np.allclose(clone.predict(x), tree.predict(x))

    def test_json_serializable(self, toy_classification):
        import json

        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=4).fit(x, y)
        blob = json.dumps(tree_to_dict(tree))
        assert "threshold" in blob

    def test_decision_path_length_bounded_by_depth(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=16).fit(x, y)
        lengths = tree.decision_path_length(x[:20])
        assert lengths.max() <= tree.depth


def _degenerate_chain(depth: int) -> Node:
    """A pathological chain tree ``depth`` internal nodes deep."""
    root = Node(feature=0, threshold=0.5, value=np.array([1.0, 0.0]))
    cur = root
    for i in range(depth):
        cur.left = Node(value=np.array([1.0, 0.0]))
        last = i == depth - 1
        cur.right = Node(
            feature=-1 if last else 0,
            threshold=float(i) + 1.5,
            value=np.array([0.0, 1.0]),
        )
        cur = cur.right
    return root


class TestInputValidation:
    """A transposed matrix must raise, not silently produce garbage."""

    def test_predict_rejects_wrong_width(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=8).fit(x, y)
        with pytest.raises(ValueError, match="features"):
            tree.predict(x.T)

    def test_predict_proba_rejects_wrong_width(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=8).fit(x, y)
        with pytest.raises(ValueError, match="features"):
            tree.predict_proba(np.zeros((4, x.shape[1] + 2)))

    def test_predict_one_rejects_wrong_length(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=8).fit(x, y)
        with pytest.raises(ValueError, match="features"):
            tree.predict_one(x[0][:3])

    def test_apply_rejects_wrong_width(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=8).fit(x, y)
        with pytest.raises(ValueError, match="features"):
            tree.apply(x[:, :2])

    def test_path_length_rejects_wrong_width(self, toy_classification):
        x, y = toy_classification
        tree = DecisionTreeClassifier(max_leaf_nodes=8).fit(x, y)
        with pytest.raises(ValueError, match="features"):
            tree.decision_path_length(x[:, :3])

    def test_regressor_predict_rejects_wrong_width(self, toy_regression):
        x, y = toy_regression
        tree = DecisionTreeRegressor(max_leaf_nodes=8).fit(x, y)
        with pytest.raises(ValueError, match="features"):
            tree.predict(x.T)


class TestDeepTrees:
    """Regression tests for recursion-limit crashes on degenerate trees."""

    def test_node_copy_depth_2000(self):
        # The old recursive Node.copy() blew Python's recursion limit
        # well before depth 2000.
        root = _degenerate_chain(2000)
        clone = root.copy()
        n_src = n_clone = 0
        stack = [(root, clone)]
        while stack:
            a, b = stack.pop()
            assert a is not b
            assert a.feature == b.feature and a.threshold == b.threshold
            n_src += 1
            n_clone += 1
            if not a.is_leaf:
                stack.append((a.left, b.left))
                stack.append((a.right, b.right))
        assert n_src == n_clone == 2 * 2000 + 1

    def test_copy_is_deep(self):
        root = _degenerate_chain(3)
        clone = root.copy()
        clone.right.feature = 7
        clone.right.value[0] = 99.0
        assert root.right.feature == 0
        assert root.right.value[0] == 0.0

    def test_flat_engine_handles_depth_2000(self):
        tree = DecisionTreeClassifier(n_classes=2)
        tree.n_features = 1
        tree.root = _degenerate_chain(2000)
        assert tree.depth == 2000
        assert tree.node_count == 2 * 2000 + 1
        pred = tree.predict(np.array([[0.0], [1.0], [2500.0]]))
        assert pred.tolist() == [0, 0, 1]

    def test_pruning_handles_depth_2000(self):
        tree = DecisionTreeClassifier(n_classes=2)
        tree.n_features = 1
        tree.root = _degenerate_chain(2000)
        pruned = prune_to_leaves(tree, 10)
        assert pruned.n_leaves <= 10
