"""Tests for the hypergraph core: structure, search, formulations, adjust."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hypergraph import (
    ClusterSchedulingSystem,
    CriticalConnectionSearch,
    Hypergraph,
    MaskedSystem,
    NFVPlacementSystem,
    UDNAssociationSystem,
    cluster_scheduling_hypergraph,
    nfv_placement_hypergraph,
    udn_hypergraph,
)
from repro.core.hypergraph.search import (
    MaskResult,
    _entropy_grad,
    _mask_entropy,
)


class TestHypergraph:
    def _simple(self):
        return Hypergraph(
            vertex_labels=["v0", "v1", "v2"],
            edge_labels=["e0", "e1"],
            incidence=np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]]),
        )

    def test_counts(self):
        hg = self._simple()
        assert hg.n_vertices == 3
        assert hg.n_edges == 2

    def test_connections(self):
        assert set(self._simple().connections()) == {
            (0, 0), (0, 1), (1, 1), (1, 2)
        }

    def test_degrees(self):
        hg = self._simple()
        assert list(hg.degree_vertices()) == [1.0, 2.0, 1.0]
        assert list(hg.degree_edges()) == [2.0, 2.0]

    def test_rejects_non_binary_incidence(self):
        with pytest.raises(ValueError):
            Hypergraph(["v"], ["e"], np.array([[0.5]]))

    def test_rejects_label_mismatch(self):
        with pytest.raises(ValueError):
            Hypergraph(["v0"], ["e0"], np.ones((1, 2)))

    def test_feature_shape_checked(self):
        with pytest.raises(ValueError):
            Hypergraph(
                ["v0", "v1"], ["e0"], np.ones((1, 2)),
                vertex_features=np.ones((3, 1)),
            )

    def test_connection_label(self):
        assert self._simple().connection_label(0, 1) == "e0 | v1"


class TestEntropyMath:
    def test_entropy_max_at_half(self):
        support = np.array([[True]])
        mid = _mask_entropy(np.array([[0.5]]), support)
        edge = _mask_entropy(np.array([[0.99]]), support)
        assert mid > edge

    def test_entropy_grad_zero_at_half(self):
        support = np.array([[True]])
        g = _entropy_grad(np.array([[0.5]]), support)
        assert g[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_entropy_grad_sign(self):
        support = np.array([[True, True]])
        g = _entropy_grad(np.array([[0.9, 0.1]]), support)
        assert g[0, 0] < 0  # pushing higher reduces entropy
        assert g[0, 1] > 0

    @given(st.floats(0.01, 0.99))
    @settings(max_examples=20, deadline=None)
    def test_entropy_nonnegative(self, w):
        support = np.array([[True]])
        assert _mask_entropy(np.array([[w]]), support) >= 0


class _PlantedSystem(MaskedSystem):
    """Divergence punishes suppressing a planted subset of connections."""

    def __init__(self, incidence, critical_mask, strength=20.0):
        self.hypergraph = Hypergraph(
            vertex_labels=[f"v{i}" for i in range(incidence.shape[1])],
            edge_labels=[f"e{i}" for i in range(incidence.shape[0])],
            incidence=incidence,
        )
        self.critical = critical_mask
        self.strength = strength

    def divergence_and_grad(self, w):
        diff = (1.0 - w) * self.critical
        div = self.strength * float(np.sum(diff**2))
        grad = -2.0 * self.strength * diff
        return div, grad

    def divergence(self, w):
        return self.divergence_and_grad(w)[0]


class TestCriticalConnectionSearch:
    def _planted(self, seed=0):
        rng = np.random.default_rng(seed)
        incidence = (rng.random((6, 8)) < 0.5).astype(float)
        incidence[0, 0] = 1.0
        critical = np.zeros_like(incidence)
        es, vs = np.nonzero(incidence)
        picks = rng.choice(len(es), size=4, replace=False)
        critical[es[picks], vs[picks]] = 1.0
        return _PlantedSystem(incidence, critical), critical

    def test_recovers_planted_connections(self):
        system, critical = self._planted()
        result = CriticalConnectionSearch(
            lambda1=0.2, lambda2=0.5, steps=300, lr=0.1
        ).run(system, seed=1)
        crit_values = result.mask[critical > 0]
        other = result.mask[(critical == 0) & (system.hypergraph.incidence > 0)]
        assert crit_values.min() > 0.8
        assert other.max() < 0.2

    def test_mask_within_incidence(self):
        system, _ = self._planted()
        result = CriticalConnectionSearch(steps=50).run(system, seed=0)
        inc = system.hypergraph.incidence
        assert np.all(result.mask <= inc + 1e-12)
        assert np.all(result.mask >= 0)

    def test_loss_history_recorded(self):
        system, _ = self._planted()
        result = CriticalConnectionSearch(steps=40).run(system, seed=0)
        assert len(result.loss_history) == 40

    def test_lambda1_suppresses_mass(self):
        # lambda1 large enough to overpower the planted divergence term
        # must suppress even the critical connections.
        system, _ = self._planted()
        low = CriticalConnectionSearch(
            lambda1=0.01, lambda2=0.1, steps=200
        ).run(system, seed=0)
        high = CriticalConnectionSearch(
            lambda1=60.0, lambda2=0.1, steps=200
        ).run(system, seed=0)
        assert high.l1 < 0.5 * low.l1

    def test_top_connections_sorted(self):
        system, _ = self._planted()
        result = CriticalConnectionSearch(steps=100).run(system, seed=0)
        tops = result.top_connections(5)
        values = [v for _, v, _, _ in tops]
        assert values == sorted(values, reverse=True)

    def test_vertex_mask_sums_shape(self):
        system, _ = self._planted()
        result = CriticalConnectionSearch(steps=30).run(system, seed=0)
        assert result.vertex_mask_sums().shape == (8,)


class TestFormulations:
    def test_nfv_gradient_check(self):
        hg = nfv_placement_hypergraph(seed=1)
        system = NFVPlacementSystem(hg)
        w = hg.incidence * 0.6
        _, grad = system.divergence_and_grad(w)
        eps = 1e-6
        es, vs = np.nonzero(hg.incidence)
        for k in range(min(6, len(es))):
            e, v = es[k], vs[k]
            w[e, v] += eps
            fp = system.divergence(w)
            w[e, v] -= 2 * eps
            fm = system.divergence(w)
            w[e, v] += eps
            assert grad[e, v] == pytest.approx(
                (fp - fm) / (2 * eps), abs=1e-5
            )

    def test_nfv_divergence_zero_at_identity(self):
        hg = nfv_placement_hypergraph(seed=2)
        system = NFVPlacementSystem(hg)
        assert system.divergence(hg.incidence) == pytest.approx(0.0)

    def test_nfv_masking_shifts_load(self):
        hg = nfv_placement_hypergraph(seed=3)
        system = NFVPlacementSystem(hg)
        w = hg.incidence.copy()
        es, vs = np.nonzero(w)
        w[es[0], vs[0]] = 0.0
        assert system.divergence(w) > 0

    def test_udn_every_user_served(self):
        hg = udn_hypergraph(seed=4)
        assert np.all(hg.incidence.sum(axis=0) >= 1)

    def test_udn_rates_capped_by_demand(self):
        hg = udn_hypergraph(seed=5)
        system = UDNAssociationSystem(hg)
        rates = system.output(hg.incidence)
        assert np.all(rates <= system._demand + 1e-9)

    def test_udn_spsa_search_runs(self):
        hg = udn_hypergraph(n_users=8, n_stations=3, seed=6)
        system = UDNAssociationSystem(hg)
        result = CriticalConnectionSearch(
            lambda1=0.05, lambda2=0.1, steps=30
        ).run(system, seed=0)
        assert isinstance(result, MaskResult)

    def test_cluster_dag_finish_times_ordered(self):
        hg = cluster_scheduling_hypergraph(n_nodes=8, seed=7)
        system = ClusterSchedulingSystem(hg)
        finish = system.output(hg.incidence)
        # Every child finishes no earlier than its own work.
        assert np.all(finish >= system._work - 1e-9)

    def test_cluster_masking_shortens_critical_path(self):
        hg = cluster_scheduling_hypergraph(n_nodes=8, seed=8)
        system = ClusterSchedulingSystem(hg)
        zero = np.zeros_like(hg.incidence)
        relaxed = system.output(zero)
        full = system.output(hg.incidence)
        assert relaxed.sum() <= full.sum() + 1e-9
