"""Tests for the flow-scheduling substrate: workloads, MLFQ, simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.envs.flows import (
    DATA_MINING,
    FabricSimulator,
    Flow,
    MLFQConfig,
    WEB_SEARCH,
    generate_flows,
)
from repro.envs.flows.workloads import FlowSizeDistribution


class TestFlowSizeDistribution:
    def test_sample_range(self):
        sizes = WEB_SEARCH.sample(np.random.default_rng(0), 1000)
        assert sizes.min() >= 1
        assert sizes.max() <= 20_000_000

    def test_quantile_monotone(self):
        u = np.linspace(0.01, 0.99, 50)
        q = WEB_SEARCH.quantile(u)
        assert np.all(np.diff(q) >= 0)

    def test_datamining_heavier_tail(self):
        rng = np.random.default_rng(1)
        ws = WEB_SEARCH.sample(rng, 20_000)
        dm = DATA_MINING.sample(rng, 20_000)
        assert np.percentile(dm, 99) > np.percentile(ws, 99)

    def test_invalid_knots_rejected(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("bad", ((100, 0.5), (50, 1.0)))

    def test_must_end_at_one(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("bad", ((100, 0.5),))

    @given(st.floats(0.001, 0.999))
    @settings(max_examples=30, deadline=None)
    def test_quantile_within_support(self, u):
        q = float(DATA_MINING.quantile(np.array([u]))[0])
        assert 1.0 <= q <= 1_000_000_000


class TestGenerateFlows:
    def test_load_bounds_checked(self):
        with pytest.raises(ValueError):
            generate_flows(WEB_SEARCH, load=1.5, capacity_bps=1e9,
                           duration_s=1.0)

    def test_arrivals_sorted_and_within_duration(self):
        flows = generate_flows(WEB_SEARCH, load=0.5, capacity_bps=1e9,
                               duration_s=2.0, seed=0)
        arrivals = [f.arrival for f in flows]
        assert arrivals == sorted(arrivals)
        assert max(arrivals) <= 2.0

    def test_offered_load_close_to_target(self):
        flows = generate_flows(WEB_SEARCH, load=0.6, capacity_bps=1e9,
                               duration_s=60.0, seed=1)
        offered = sum(f.size_bytes for f in flows) * 8 / 60.0
        assert 0.3e9 < offered < 0.9e9


class TestMLFQConfig:
    def test_queue_of(self):
        config = MLFQConfig((100.0, 1000.0))
        assert config.queue_of(0) == 0
        assert config.queue_of(100) == 1
        assert config.queue_of(5000) == 2

    def test_n_queues(self):
        assert MLFQConfig((1.0, 2.0, 3.0)).n_queues == 4

    def test_bytes_to_demotion(self):
        config = MLFQConfig((100.0, 1000.0))
        assert config.bytes_to_demotion(40.0) == 60.0
        assert config.bytes_to_demotion(5000.0) == float("inf")

    def test_requires_increasing(self):
        with pytest.raises(ValueError):
            MLFQConfig((100.0, 100.0))

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            MLFQConfig((0.0, 10.0))

    def test_from_log2_sorts_and_separates(self):
        config = MLFQConfig.from_log2([12.0, 10.0, 10.0, 14.0])
        t = config.thresholds_bytes
        assert all(t[i] < t[i + 1] for i in range(len(t) - 1))
        assert t[0] == pytest.approx(2**10)


class TestFabricSimulator:
    def _flows(self, sizes, arrivals=None):
        arrivals = arrivals or [0.0] * len(sizes)
        return [
            Flow(flow_id=i, arrival=a, size_bytes=s)
            for i, (a, s) in enumerate(zip(arrivals, sizes))
        ]

    def test_all_flows_complete(self):
        flows = generate_flows(WEB_SEARCH, load=0.5, capacity_bps=1e9,
                               duration_s=1.0, seed=2)
        result = FabricSimulator(capacity_bps=1e9).run(flows)
        assert len(result.flows) == len(flows)

    def test_fct_at_least_ideal(self):
        flows = generate_flows(WEB_SEARCH, load=0.6, capacity_bps=1e9,
                               duration_s=1.0, seed=3)
        result = FabricSimulator(capacity_bps=1e9).run(flows)
        for f in result.flows:
            assert f.fct >= f.ideal_fct(1e9) * 0.999

    def test_single_flow_gets_full_capacity(self):
        sim = FabricSimulator(capacity_bps=1e9)
        result = sim.run(self._flows([1_000_000]))
        assert result.flows[0].fct == pytest.approx(0.008, rel=1e-3)

    def test_short_flow_preempts_long(self):
        # A short flow arriving mid-transfer of a long flow should finish
        # almost as fast as on an idle link (it has higher MLFQ priority).
        sim = FabricSimulator(capacity_bps=1e9)
        flows = self._flows([50_000_000, 10_000], arrivals=[0.0, 0.05])
        result = sim.run(flows)
        short = [f for f in result.flows if f.flow_id == 1][0]
        assert short.fct < 3 * short.ideal_fct(1e9) + 1e-4

    def test_priority_decision_respected(self):
        # Pin the long flow to top priority: now it blocks the short flow.
        def decide(flow, snapshot):
            return 0

        sim = FabricSimulator(
            capacity_bps=1e9, decision_fn=decide,
            decision_latency_s=0.0, decision_min_bytes=1_000_000,
        )
        flows = self._flows([50_000_000, 200_000], arrivals=[0.0, 0.01])
        result = sim.run(flows)
        short = [f for f in result.flows if f.flow_id == 1][0]
        # The short flow shares with / waits behind the pinned long flow.
        assert short.fct > 2 * short.ideal_fct(1e9)

    def test_decision_latency_gates_coverage(self):
        calls = []

        def decide(flow, snapshot):
            calls.append(flow.flow_id)
            return 0

        # With a huge decision latency, flows finish before any decision.
        sim = FabricSimulator(
            capacity_bps=1e9, decision_fn=decide,
            decision_latency_s=10.0, decision_min_bytes=0.0,
        )
        sim.run(self._flows([10_000, 20_000]))
        assert calls == []

    def test_decision_log_records_features(self):
        def decide(flow, snapshot):
            return 1

        sim = FabricSimulator(
            capacity_bps=1e9, decision_fn=decide,
            decision_min_bytes=1_000_000,
        )
        sim.run(self._flows([5_000_000]))
        assert len(sim.decision_log) == 1
        features, priority = sim.decision_log[0]
        assert priority == 1
        assert features.shape == (12,)

    def test_work_conservation(self):
        # Total service time equals total bytes / capacity when the link
        # never idles (all flows at t=0).
        sizes = [1_000_000, 2_000_000, 3_000_000]
        sim = FabricSimulator(capacity_bps=1e9)
        result = sim.run(self._flows(sizes))
        makespan = max(f.completion for f in result.flows)
        assert makespan == pytest.approx(sum(sizes) * 8 / 1e9, rel=1e-3)

    def test_slowdowns_at_least_one(self):
        flows = generate_flows(DATA_MINING, load=0.5, capacity_bps=1e9,
                               duration_s=1.0, seed=4)
        result = FabricSimulator(capacity_bps=1e9).run(flows)
        assert np.all(result.slowdowns() >= 0.999)

    def test_subset_filtering(self):
        sim = FabricSimulator(capacity_bps=1e9)
        result = sim.run(self._flows([10_000, 5_000_000]))
        big = result.subset(lambda f: f.size_bytes > 1_000_000)
        assert len(big.flows) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FabricSimulator(capacity_bps=0)
