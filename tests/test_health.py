"""Tests for the health engine (events journal, alerting, postmortems).

Covers the :class:`~repro.obs.events.EventJournal` ring (sequence
monotonicity, overflow gaps, cross-process ingest), the
:class:`~repro.obs.health.HealthMonitor` hysteresis state machine
driven by a fake clock, the :class:`~repro.obs.postmortem`
flight recorder (atomic bundles, retention, opt-in), the
``ServerMetrics.error_ratio`` window reader, the exporter's ``/events``
endpoint and its one-shot start/close lifecycle, and the serving
tiers' emission hooks end to end (including the chaos path: a shard
killed under an active canary split must journal
``shard_death`` → ``shard_spawn`` → ``shard_heal`` and drop a
postmortem bundle, over both wire transports).
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.obs import (
    EVENT_KINDS,
    AlertRule,
    EventJournal,
    FlightRecorder,
    HealthMonitor,
    MetricsExporter,
    MetricsHub,
    burn_rate_rule,
    events_to_jsonl,
    load_bundle,
    standard_rules,
)
from repro.serve.server import ServerMetrics


class TestEventJournal:
    def test_emit_assigns_monotonic_seq(self):
        journal = EventJournal()
        records = [journal.emit("publish", labels={"model": "m"})
                   for _ in range(5)]
        assert [r["seq"] for r in records] == [1, 2, 3, 4, 5]
        assert journal.last_seq == 5

    def test_unknown_kind_and_severity_rejected(self):
        journal = EventJournal()
        with pytest.raises(ValueError, match="kind"):
            journal.emit("not_a_kind")
        with pytest.raises(ValueError, match="severity"):
            journal.emit("publish", severity="catastrophic")
        assert len(journal) == 0

    def test_ring_bounds_but_seq_keeps_counting(self):
        journal = EventJournal(capacity=4)
        for _ in range(10):
            journal.emit("publish")
        assert len(journal) == 4
        events = journal.events_since(0)
        # A reader that fell behind the ring sees the gap: the first
        # available seq exceeds since+1.
        assert [e["seq"] for e in events] == [7, 8, 9, 10]
        assert journal.last_seq == 10

    def test_events_since_is_strictly_greater(self):
        journal = EventJournal()
        for _ in range(6):
            journal.emit("publish")
        assert [e["seq"] for e in journal.events_since(4)] == [5, 6]
        assert journal.events_since(6) == []

    def test_tail_returns_newest_oldest_first(self):
        journal = EventJournal()
        for i in range(5):
            journal.emit("publish", idx=i)
        tail = journal.tail(2)
        assert [e["fields"]["idx"] for e in tail] == [3, 4]
        assert journal.tail(0) == []

    def test_ingest_relabels_and_resequences(self):
        worker = EventJournal()
        worker.emit("publish", labels={"model": "m"}, version=1)
        worker.emit("kernel_fallback", severity="warn", rows=8)
        parent = EventJournal()
        parent.emit("shard_spawn", labels={"shard": "0"})
        merged = parent.ingest(worker.events_since(0), {"shard": "0"})
        assert [e["seq"] for e in merged] == [2, 3]
        assert all(e["labels"]["shard"] == "0" for e in merged)
        # Worker-side identity survives the merge.
        assert merged[0]["labels"]["model"] == "m"
        assert merged[0]["fields"]["origin_seq"] == 1
        assert merged[1]["fields"]["origin_seq"] == 2
        assert parent.last_seq == 3

    def test_ingest_skips_garbage(self):
        parent = EventJournal()
        merged = parent.ingest(["nope", {}, {"kind": "publish"}], None)
        assert len(merged) == 1
        assert parent.last_seq == 1

    def test_hub_mirror_counts_by_kind_and_severity(self):
        hub = MetricsHub()
        journal = EventJournal(hub=hub)
        journal.emit("publish")
        journal.emit("shard_death", severity="error")
        journal.emit("shard_death", severity="error")
        page = hub.render()
        assert ('repro_events_total{kind="publish",severity="info"} 1'
                in page)
        assert ('repro_events_total{kind="shard_death",severity="error"}'
                ' 2' in page)

    def test_jsonl_roundtrip(self):
        journal = EventJournal()
        journal.emit("publish", labels={"model": "m"}, version=1)
        journal.emit("alias_move", labels={"alias": "prod"})
        body = events_to_jsonl(journal.events_since(0))
        lines = body.splitlines()
        assert len(lines) == 2 and body.endswith("\n")
        parsed = [json.loads(line) for line in lines]
        assert [p["seq"] for p in parsed] == [1, 2]
        assert parsed[0]["labels"] == {"model": "m"}

    def test_concurrent_emit_never_duplicates_seq(self):
        journal = EventJournal(capacity=4096)

        def hammer():
            for _ in range(200):
                journal.emit("publish")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [e["seq"] for e in journal.events_since(0)]
        assert len(seqs) == len(set(seqs)) == 800
        assert seqs == sorted(seqs)


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestHealthMonitor:
    def _monitor(self, breached, rule_kwargs=None, **kwargs):
        clock = FakeClock()
        rule = AlertRule("r", lambda: breached[0], **(rule_kwargs or {}))
        monitor = HealthMonitor(rules=[rule], clock=clock, **kwargs)
        return monitor, clock, rule

    def test_fires_immediately_with_zero_for_s(self):
        breached = [False]
        monitor, clock, _ = self._monitor(breached)
        assert monitor.tick() == []
        breached[0] = True
        transitions = monitor.tick()
        assert [t["transition"] for t in transitions] == ["fire"]
        assert monitor.active_alerts() == ["r"]

    def test_for_s_hysteresis_blocks_blips(self):
        breached = [True]
        monitor, clock, _ = self._monitor(
            breached, rule_kwargs={"for_s": 10.0})
        assert monitor.tick() == []  # pending, not firing
        assert monitor.states()["r"] == "pending"
        clock.advance(5.0)
        breached[0] = False
        assert monitor.tick() == []  # blip: back to inactive, no fire
        assert monitor.states()["r"] == "inactive"
        breached[0] = True
        monitor.tick()
        clock.advance(10.0)
        assert [t["transition"] for t in monitor.tick()] == ["fire"]

    def test_resolve_and_cooldown_rearm(self):
        breached = [True]
        monitor, clock, _ = self._monitor(
            breached, rule_kwargs={"cooldown_s": 30.0})
        monitor.tick()
        assert monitor.active_alerts() == ["r"]
        breached[0] = False
        assert [t["transition"] for t in monitor.tick()] == ["resolve"]
        assert monitor.active_alerts() == []
        breached[0] = True
        clock.advance(10.0)
        assert monitor.tick() == []  # still cooling down
        assert monitor.states()["r"] == "inactive"
        clock.advance(30.0)
        transitions = monitor.tick()
        assert [t["transition"] for t in transitions] == ["fire"]

    def test_transitions_are_journaled_and_gauged(self):
        hub = MetricsHub()
        journal = EventJournal(hub=hub)
        breached = [True]
        clock = FakeClock()
        rule = AlertRule("slo", lambda: breached[0], severity="error")
        monitor = HealthMonitor(rules=[rule], journal=journal, hub=hub,
                                clock=clock)
        # Gauge pre-registered at 0 so dashboards see the rule exists.
        assert 'repro_alerts_active{rule="slo"} 0' in hub.render()
        monitor.tick()
        kinds = [e["kind"] for e in journal.events_since(0)]
        assert kinds == ["slo_breach", "alert_fire"]
        fire = journal.events_since(0)[-1]
        assert fire["severity"] == "error"
        assert fire["labels"]["rule"] == "slo"
        assert 'repro_alerts_active{rule="slo"} 1' in hub.render()
        breached[0] = False
        monitor.tick()
        assert 'repro_alerts_active{rule="slo"} 0' in hub.render()
        kinds = [e["kind"] for e in journal.events_since(0)]
        assert kinds[-1] == "alert_resolve"

    def test_callbacks_see_fire_and_resolve(self):
        breached = [True]
        monitor, _, rule = self._monitor(breached)
        seen = []
        monitor.subscribe(
            lambda r, transition, event: seen.append((r.name, transition))
        )
        monitor.subscribe(lambda *a: 1 / 0)  # raising observer swallowed
        monitor.tick()
        breached[0] = False
        monitor.tick()
        assert seen == [("r", "fire"), ("r", "resolve")]

    def test_raising_predicate_counts_not_pages(self):
        rule = AlertRule("broken", lambda: 1 / 0)
        monitor = HealthMonitor(rules=[rule], clock=FakeClock())
        assert monitor.tick() == []
        assert monitor.predicate_errors == 1
        assert monitor.active_alerts() == []

    def test_duplicate_rule_key_rejected(self):
        monitor = HealthMonitor(clock=FakeClock())
        monitor.add_rule(AlertRule("r", lambda: False,
                                   labels={"model": "m"}))
        monitor.add_rule(AlertRule("r", lambda: False))  # different key
        with pytest.raises(ValueError, match="duplicate"):
            monitor.add_rule(AlertRule("r", lambda: False,
                                       labels={"model": "m"}))

    def test_page_severity_fire_captures_postmortem(self, tmp_path):
        journal = EventJournal()
        recorder = FlightRecorder(directory=str(tmp_path),
                                  journal=journal)
        rule = AlertRule("meltdown", lambda: True, severity="page")
        monitor = HealthMonitor(rules=[rule], journal=journal,
                                recorder=recorder, clock=FakeClock())
        monitor.tick()
        bundles = recorder.bundles()
        assert len(bundles) == 1
        bundle = load_bundle(bundles[0])
        assert bundle["reason"] == "alert_meltdown"
        assert bundle["extra"]["rule"] == "meltdown"

    def test_background_ticker_lifecycle(self):
        breached = [True]
        rule = AlertRule("r", lambda: breached[0])
        with HealthMonitor(rules=[rule], interval_s=0.01) as monitor:
            deadline = 200
            while not monitor.active_alerts() and deadline:
                deadline -= 1
                import time as _time
                _time.sleep(0.01)
            assert monitor.active_alerts() == ["r"]
        assert monitor.ticks > 0

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="severity"):
            AlertRule("r", lambda: True, severity="loud")
        with pytest.raises(ValueError, match="name"):
            AlertRule("", lambda: True)
        with pytest.raises(ValueError, match="for_s"):
            AlertRule("r", lambda: True, for_s=-1)

    def test_burn_rate_requires_both_windows(self):
        values = {60.0: 5.0, 1800.0: 0.0}
        rule = burn_rate_rule("burn", lambda w: values[w], threshold=1.0)
        assert not rule.predicate()  # fast only: old incident, no page
        values[1800.0] = 5.0
        assert rule.predicate()
        values[60.0] = 0.0
        assert not rule.predicate()  # slow only: already recovered

    def test_burn_rate_window_validation(self):
        with pytest.raises(ValueError, match="fast window"):
            burn_rate_rule("b", lambda w: 0.0, 1.0,
                           fast_window_s=60.0, slow_window_s=30.0)

    def test_standard_rules_cover_the_stock_signals(self):
        metrics = ServerMetrics()
        shadow = {"m": {"requests": 500, "agreement_rate": 0.5}}
        backend = {"models": {"m": {"native_rows": 50,
                                    "fallback_rows": 50}}}
        rules = standard_rules(
            metrics, slo_p95_ms=10.0,
            queue_depth_fn=lambda: 5000, max_queue_depth=1024,
            shadow_report_fn=lambda: shadow,
            backend_report_fn=lambda: backend,
        )
        by_name = {r.name: r for r in rules}
        assert set(by_name) == {
            "p95_slo_burn", "error_ratio_burn", "shadow_agreement_floor",
            "native_fallback_ratio", "queue_depth_ceiling",
        }
        assert by_name["p95_slo_burn"].severity == "page"
        assert by_name["queue_depth_ceiling"].predicate()
        assert by_name["shadow_agreement_floor"].predicate()
        assert by_name["native_fallback_ratio"].predicate()
        backend["models"]["m"]["fallback_rows"] = 0
        assert not by_name["native_fallback_ratio"].predicate()
        # Idle metrics: neither burn rule is breached.
        assert not by_name["p95_slo_burn"].predicate()
        assert not by_name["error_ratio_burn"].predicate()


class TestErrorRatio:
    def test_empty_window_reads_zero(self):
        metrics = ServerMetrics()
        assert metrics.error_ratio() == 0.0
        assert metrics.error_ratio(window_s=1.0) == 0.0

    def test_all_error_window_reads_one(self):
        metrics = ServerMetrics()
        for _ in range(10):
            metrics.record("m", 0, 0.001, error="bad-feature-shape")
        assert metrics.error_ratio() == 1.0
        assert metrics.error_ratio(window_s=60.0) == 1.0

    def test_mixed_stream_ratio(self):
        metrics = ServerMetrics()
        for _ in range(3):
            metrics.record("m", 1, 0.001, error="unknown-model")
        for _ in range(9):
            metrics.record("m", 1, 0.001)
        assert metrics.error_ratio() == pytest.approx(0.25)

    def test_window_ages_errors_out(self):
        metrics = ServerMetrics()
        metrics.record("m", 1, 0.001, error="unknown-model")
        # A window in the future of every recorded sample is empty.
        assert metrics.error_ratio(window_s=-1.0) == 0.0


class TestFlightRecorder:
    def test_disabled_without_directory(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_POSTMORTEM_DIR", raising=False)
        recorder = FlightRecorder()
        assert not recorder.enabled
        assert recorder.capture("whatever") is None
        assert recorder.bundles() == []

    def test_env_var_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_POSTMORTEM_DIR", str(tmp_path))
        recorder = FlightRecorder()
        assert recorder.enabled
        path = recorder.capture("env-capture")
        assert path is not None and path.parent == tmp_path

    def test_bundle_contents_and_schema(self, tmp_path):
        journal = EventJournal()
        journal.emit("publish", labels={"model": "m"}, version=1)
        recorder = FlightRecorder(
            directory=str(tmp_path), journal=journal,
            metrics_fn=lambda: "# HELP x y\n# TYPE x counter\nx 1\n",
            state_fn=lambda: {"tier": "test"},
        )
        path = recorder.capture("unit", extra={"k": "v"})
        bundle = load_bundle(path)
        assert bundle["schema"] == 1
        assert bundle["reason"] == "unit"
        assert bundle["extra"] == {"k": "v"}
        assert bundle["events"][0]["kind"] == "publish"
        assert bundle["state"] == {"tier": "test"}
        assert "x 1" in bundle["metrics"]

    def test_retention_prunes_oldest(self, tmp_path):
        recorder = FlightRecorder(directory=str(tmp_path), retain=3)
        for i in range(7):
            recorder.capture(f"cap{i}")
        bundles = recorder.bundles()
        assert len(bundles) == 3
        assert [load_bundle(b)["reason"] for b in bundles] == [
            "cap4", "cap5", "cap6"]

    def test_capture_never_raises(self, tmp_path):
        recorder = FlightRecorder(
            directory=str(tmp_path / "sub"),
            metrics_fn=lambda: 1 / 0,
            state_fn=lambda: 1 / 0,
        )
        path = recorder.capture("broken-sources")
        bundle = load_bundle(path)
        assert bundle["metrics"] == "" and bundle["state"] is None
        # Even an unwritable directory must not raise.
        recorder.directory = tmp_path / "sub" / "file-not-dir"
        recorder.directory.write_text("block")
        assert recorder.capture("no-dir") is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        recorder = FlightRecorder(directory=str(tmp_path))
        recorder.capture("atomic")
        assert not list(tmp_path.glob("*.tmp"))

    def test_load_bundle_rejects_garbage(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="not a postmortem"):
            load_bundle(path)
        path.write_text('{"schema": 99}')
        with pytest.raises(ValueError, match="newer"):
            load_bundle(path)


class TestExporterEventsAndLifecycle:
    def test_events_endpoint_serves_jsonl_with_since(self):
        journal = EventJournal()
        for i in range(4):
            journal.emit("publish", idx=i)
        with MetricsExporter(
            render_metrics=lambda: "",
            events_fn=journal.events_since,
        ) as exporter:
            body = urllib.request.urlopen(
                exporter.url + "/events", timeout=10).read().decode()
            seqs = [json.loads(line)["seq"]
                    for line in body.splitlines() if line]
            assert seqs == [1, 2, 3, 4]
            body = urllib.request.urlopen(
                exporter.url + "/events?since=2", timeout=10
            ).read().decode()
            seqs = [json.loads(line)["seq"]
                    for line in body.splitlines() if line]
            assert seqs == [3, 4]

    def test_events_empty_without_events_fn(self):
        with MetricsExporter(render_metrics=lambda: "") as exporter:
            response = urllib.request.urlopen(
                exporter.url + "/events", timeout=10)
            assert response.read() == b""

    def test_double_start_raises(self):
        exporter = MetricsExporter(render_metrics=lambda: "")
        exporter.start()
        try:
            with pytest.raises(RuntimeError, match="one-shot"):
                exporter.start()
        finally:
            exporter.close()

    def test_start_after_close_raises(self):
        exporter = MetricsExporter(render_metrics=lambda: "")
        exporter.start()
        exporter.close()
        exporter.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            exporter.start()

    def test_close_before_start_is_fine(self):
        exporter = MetricsExporter(render_metrics=lambda: "")
        exporter.close()
        with pytest.raises(RuntimeError, match="closed"):
            exporter.start()


def _toy_artifact(tag: int = 0):
    from repro.core.tree import DecisionTreeClassifier
    from repro.serve import PolicyArtifact

    rng = np.random.default_rng(tag)
    x = rng.uniform(0, 1, (120, 4))
    y = (x[:, 0] > 0.5).astype(int)
    tree = DecisionTreeClassifier(max_leaf_nodes=8).fit(x, y)
    return PolicyArtifact.from_tree(tree, name=f"toy{tag}")


class TestPolicyServerHealth:
    def test_journal_records_lifecycle_and_alert_cycle(self):
        from repro.serve import PolicyServer

        rng = np.random.default_rng(1)
        server = PolicyServer()
        try:
            server.publish("toy", _toy_artifact())
            server.alias("prod", "toy")
            kinds = [e["kind"] for e in server.events()]
            assert kinds == ["publish", "alias_move"]
            monitor = server.start_health(
                slo_p95_ms=1e-6, fast_window_s=1.0, slow_window_s=1.0,
                for_s=0.0, interval_s=0.01,
            )
            with pytest.raises(RuntimeError, match="already"):
                server.start_health()
            import time as _time
            deadline = _time.monotonic() + 10
            while (_time.monotonic() < deadline
                   and not monitor.active_alerts()):
                assert server.submit(
                    "toy", rng.uniform(0, 1, 4)).result(timeout=10).ok
                _time.sleep(0.005)
            assert any("p95_slo_burn" in k
                       for k in monitor.active_alerts())
            page = server.render_metrics()
            assert 'repro_alerts_active{rule="p95_slo_burn"} 1' in page
            deadline = _time.monotonic() + 15
            while _time.monotonic() < deadline and monitor.active_alerts():
                _time.sleep(0.05)
            kinds = [e["kind"] for e in server.events()]
            assert "slo_breach" in kinds
            assert "alert_fire" in kinds
            assert "alert_resolve" in kinds
        finally:
            server.close()
        assert server.health is None or monitor._thread is None

    def test_rollback_is_journaled_as_error(self):
        from repro.serve import PolicyServer

        server = PolicyServer()
        try:
            server.publish("toy", _toy_artifact())
            version = server.publish("toy", _toy_artifact(1))
            server.registry.rollback_publish("toy", version)
            events = server.events()
            rollback = [e for e in events if e["kind"] == "rollback"]
            assert len(rollback) == 1
            assert rollback[0]["severity"] == "error"
            assert rollback[0]["labels"]["model"] == "toy"
        finally:
            server.close()

    def test_canary_change_journaled(self):
        from repro.serve import PolicyServer

        server = PolicyServer()
        try:
            server.publish("a", _toy_artifact())
            server.publish("b", _toy_artifact(1))
            server.set_split("a", canary="b", canary_fraction=0.25)
            server.clear_split("a")
            server.clear_split("a")  # no-op: nothing to clear
            changes = [e for e in server.events()
                       if e["kind"] == "canary_change"]
            assert len(changes) == 2
            assert changes[0]["fields"]["canary"] == "b"
            assert changes[1]["fields"].get("cleared") is True
        finally:
            server.close()

    def test_start_exporter_is_one_shot(self):
        from repro.serve import PolicyServer

        server = PolicyServer(exporter_port=0)
        try:
            with pytest.raises(RuntimeError, match="already"):
                server.start_exporter(port=0)
        finally:
            server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.start_exporter(port=0)


class TestClusterHealth:
    @pytest.mark.parametrize("transport", ["pipe", "socket"])
    def test_chaos_kill_under_canary_journals_and_captures(
            self, transport, tmp_path):
        """Kill a shard under an active canary split: the merged journal
        must show shard_death → shard_spawn → shard_heal with matching
        shard labels, worker-origin events must carry per-shard labels
        (the cross-process merge), and a postmortem bundle must land on
        disk and parse."""
        import time as _time

        from repro.serve.cluster import ShardedPolicyService

        rng = np.random.default_rng(2)
        with ShardedPolicyService(
            n_shards=2, transport=transport, self_heal=True,
            max_delay_s=1e-3, postmortem_dir=str(tmp_path),
        ) as service:
            service.publish("base", _toy_artifact())
            service.publish("canary", _toy_artifact(1))
            service.set_split("base", canary="canary",
                              canary_fraction=0.5)
            assert service.submit(
                "base", rng.uniform(0, 1, 4)).result(timeout=10).ok

            events = service.events()
            spawn_shards = {e["labels"]["shard"] for e in events
                            if e["kind"] == "shard_spawn"}
            assert len(spawn_shards) == 2
            worker_pubs = [e for e in events if e["kind"] == "publish"
                           and "shard" in e["labels"]]
            assert spawn_shards == {e["labels"]["shard"]
                                    for e in worker_pubs}
            assert all("origin_seq" in e["fields"] for e in worker_pubs)

            victim = service._shards[0].shard_id
            service.kill_shard(victim)
            deadline = _time.monotonic() + 30
            while _time.monotonic() < deadline:
                kinds = [e["kind"] for e in service.events()]
                if "shard_heal" in kinds:
                    break
                _time.sleep(0.05)
            events = service.events()
            by_kind = {e["kind"]: e for e in events}
            assert "shard_death" in by_kind and "shard_heal" in by_kind
            death = by_kind["shard_death"]
            heal = by_kind["shard_heal"]
            assert death["labels"]["shard"] == str(victim)
            assert death["severity"] == "error"
            assert heal["fields"]["replaced"] == victim
            # Death precedes the replacement's spawn precedes heal.
            respawn = [e for e in events if e["kind"] == "shard_spawn"
                       and e["labels"]["shard"]
                       == heal["labels"]["shard"]]
            assert respawn
            assert (death["seq"] < respawn[0]["seq"] < heal["seq"])
            # Merged stream stays globally monotonic.
            seqs = [e["seq"] for e in events]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
            # The split survives and serving still works.
            assert service.submit(
                "base", rng.uniform(0, 1, 4)).result(timeout=10).ok

            bundles = sorted(tmp_path.glob("pm-*.json"))
            assert bundles, "shard death wrote no postmortem bundle"
            bundle = load_bundle(bundles[0])
            assert bundle["reason"] == f"shard_death_{victim}"
            assert bundle["state"]["tier"] == "ShardedPolicyService"
            assert any(e["kind"] == "shard_death"
                       for e in bundle["events"])

    def test_autoscale_actions_are_journaled(self):
        from repro.serve.cluster import ShardedPolicyService
        from repro.serve.cluster.autoscale import AutoscaleConfig

        with ShardedPolicyService(
            n_shards=1,
            autoscale=AutoscaleConfig(
                min_shards=2, max_shards=2, interval_s=0.02,
                cooldown_s=0.01,
            ),
        ) as service:
            import time as _time
            deadline = _time.monotonic() + 20
            while _time.monotonic() < deadline:
                kinds = [e["kind"] for e in service.events()]
                if "autoscale_up" in kinds:
                    break
                _time.sleep(0.05)
            ups = [e for e in service.events()
                   if e["kind"] == "autoscale_up"]
            assert ups
            assert ups[0]["fields"]["shards_after"] == 2

    def test_cluster_start_exporter_is_one_shot(self):
        from repro.serve.cluster import ShardedPolicyService

        service = ShardedPolicyService(n_shards=1, exporter_port=0)
        try:
            with pytest.raises(RuntimeError, match="already"):
                service.start_exporter(port=0)
        finally:
            service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.start_exporter(port=0)

    def test_events_kinds_are_valid_vocabulary(self):
        from repro.serve.cluster import ShardedPolicyService

        with ShardedPolicyService(n_shards=1) as service:
            service.publish("m", _toy_artifact())
            assert all(e["kind"] in EVENT_KINDS
                       for e in service.events())
