"""Tests for the routing substrate: topology, demands, delay, RouteNet."""

import numpy as np
import pytest

from repro.envs.routing import (
    Routing,
    TrafficMatrix,
    gravity_demands,
    link_delays,
    nsfnet,
    routing_latencies,
)
from repro.envs.routing.delay import (
    delays_from_loads,
    link_loads,
    path_latency,
    shortest_path_routing,
)
from repro.envs.routing.topology import NSFNET_EDGES, Topology
from repro.teachers.routenet import PathLinkNet, build_features


class TestNSFNet:
    def test_size(self):
        topo = nsfnet()
        assert topo.n_nodes == 14
        assert topo.n_links == 42  # 21 fibers, both directions

    def test_paper_fig8_paths_exist(self):
        # The example paths of Fig. 8 / Table 3 must be walkable.
        topo = nsfnet()
        for path in ([6, 7, 10, 9], [1, 7, 10, 9], [7, 10, 9, 12],
                     [8, 3, 0, 2], [6, 4, 3, 0]):
            for u, v in Topology.path_links(path):
                assert topo.graph.has_edge(u, v)

    def test_capacities_directional(self):
        topo = nsfnet()
        assert topo.capacities[(7, 10)] == topo.capacities[(10, 7)]

    def test_candidate_paths_loop_free(self):
        topo = nsfnet()
        for path in topo.candidate_paths(0, 9):
            assert len(set(path)) == len(path)

    def test_candidate_paths_bounded_length(self):
        import networkx as nx

        topo = nsfnet()
        shortest = nx.shortest_path_length(topo.graph, 0, 9)
        for path in topo.candidate_paths(0, 9, extra_hops=1):
            assert len(path) - 1 <= shortest + 1

    def test_node_pairs(self):
        topo = nsfnet()
        assert len(topo.node_pairs()) == 14 * 13


class TestDemands:
    def test_all_pairs_present(self):
        topo = nsfnet()
        tm = gravity_demands(topo, seed=0)[0]
        assert len(tm.pairs()) == 14 * 13

    def test_positive_volumes(self):
        topo = nsfnet()
        tm = gravity_demands(topo, seed=0)[0]
        assert all(v > 0 for v in tm.demands.values())

    def test_utilization_anchored(self):
        topo = nsfnet()
        tm = gravity_demands(topo, utilization=0.5, seed=0)[0]
        routing = shortest_path_routing(topo)
        util = link_loads(topo, routing, tm) / topo.capacity_vector()
        assert util.mean() == pytest.approx(0.5, rel=1e-6)

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            gravity_demands(nsfnet(), utilization=1.5)

    def test_samples_differ(self):
        topo = nsfnet()
        a, b = gravity_demands(topo, seed=0, count=2)
        assert a.demands != b.demands


class TestDelayModel:
    def test_delays_increase_with_load(self):
        caps = np.array([40.0, 40.0])
        low = delays_from_loads(np.array([10.0, 10.0]), caps)
        high = delays_from_loads(np.array([30.0, 30.0]), caps)
        assert np.all(high > low)

    def test_delays_finite_at_overload(self):
        caps = np.array([40.0])
        d = delays_from_loads(np.array([100.0]), caps)
        assert np.isfinite(d[0])

    def test_routing_validates_endpoints(self):
        with pytest.raises(ValueError):
            Routing({(0, 5): [1, 2, 5]})

    def test_incidence_matches_paths(self):
        topo = nsfnet()
        routing = shortest_path_routing(topo)
        inc = routing.incidence(topo)
        pairs = routing.pairs()
        for row, pair in enumerate(pairs):
            hops = len(routing.paths[pair]) - 1
            assert inc[row].sum() == hops

    def test_latency_sums_links(self):
        topo = nsfnet()
        tm = gravity_demands(topo, seed=1)[0]
        routing = shortest_path_routing(topo)
        lat = routing_latencies(topo, routing, tm)
        delays = link_delays(topo, routing, tm)
        pair = (0, 2)
        manual = path_latency(routing.paths[pair], delays, topo)
        assert lat[pair] == pytest.approx(manual)

    def test_rerouting_changes_loads(self):
        topo = nsfnet()
        tm = gravity_demands(topo, seed=2)[0]
        base = shortest_path_routing(topo)
        loads_a = link_loads(topo, base, tm)
        paths = dict(base.paths)
        cands = topo.candidate_paths(0, 9)
        alt = next(c for c in cands if c != paths[(0, 9)])
        paths[(0, 9)] = alt
        loads_b = link_loads(topo, Routing(paths), tm)
        assert not np.allclose(loads_a, loads_b)


class TestPathLinkNet:
    def _setup(self):
        rng = np.random.default_rng(0)
        E, V = 4, 6
        net = PathLinkNet(dim=5, iterations=2, seed=1)
        xv = np.abs(rng.normal(30, 5, (V, 2)))
        xe = np.abs(rng.normal(5, 2, (E, 2)))
        w = (rng.random((E, V)) < 0.5).astype(float)
        return net, xv, xe, w

    def test_forward_shapes(self):
        net, xv, xe, w = self._setup()
        lat, probes = net.forward(xv, xe, w)
        assert lat.shape == (4,)
        assert probes is None

    def test_latencies_positive(self):
        net, xv, xe, w = self._setup()
        lat, _ = net.forward(xv, xe, w)
        assert np.all(lat > 0)

    def test_probe_output(self):
        net, xv, xe, w = self._setup()
        _, probes = net.forward(xv, xe, w, probe_w=w[:2], probe_xe=xe[:2])
        assert probes.shape == (2,)

    def test_param_gradient_check(self):
        net, xv, xe, w = self._setup()
        target = np.ones(4)

        def loss():
            lat, _ = net.forward(xv, xe, w)
            return 0.5 * np.sum((lat - target) ** 2)

        lat, _ = net.forward(xv, xe, w)
        grads, _, _ = net.backward(lat - target)
        eps = 1e-6
        for name in ("a1", "b2", "wl", "r"):
            p = getattr(net, name)
            idx = tuple(0 for _ in p.shape)
            p[idx] += eps
            fp = loss()
            p[idx] -= 2 * eps
            fm = loss()
            p[idx] += eps
            assert grads[name][idx] == pytest.approx(
                (fp - fm) / (2 * eps), abs=1e-6
            )

    def test_mask_gradient_check_with_load_coupling(self):
        net, xv, xe, w = self._setup()
        caps = xv[:, 0].copy()
        demand = xe[:, 0].copy()
        target = np.ones(4)

        def loss():
            features = np.stack([caps, w.T @ demand], axis=1)
            lat, _ = net.forward(features, xe, w)
            return 0.5 * np.sum((lat - target) ** 2)

        features = np.stack([caps, w.T @ demand], axis=1)
        lat, _ = net.forward(features, xe, w)
        grads, dw, dxv = net.backward(lat - target)
        dw = dw + np.outer(demand, dxv[:, 1])
        eps = 1e-6
        es, vs = np.nonzero(w)
        e, v = es[0], vs[0]
        w[e, v] += eps
        fp = loss()
        w[e, v] -= 2 * eps
        fm = loss()
        w[e, v] += eps
        assert dw[e, v] == pytest.approx((fp - fm) / (2 * eps), abs=1e-6)

    def test_weights_roundtrip(self):
        net, xv, xe, w = self._setup()
        other = PathLinkNet(dim=5, iterations=2, seed=9)
        other.set_weights(net.get_weights())
        a, _ = net.forward(xv, xe, w)
        b, _ = other.forward(xv, xe, w)
        assert np.allclose(a, b)

    def test_build_features_shapes(self):
        topo = nsfnet()
        tm = gravity_demands(topo, seed=3)[0]
        routing = shortest_path_routing(topo)
        xv, xe, inc, pairs = build_features(topo, routing, tm)
        assert xv.shape == (42, 2)
        assert xe.shape == (182, 2)
        assert inc.shape == (182, 42)
        assert len(pairs) == 182
