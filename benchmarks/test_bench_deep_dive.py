"""Benchmarks for the Metis deep-dive appendices (E, F, G)."""

from benchmarks.conftest import run_once


def test_bench_fig27_interpretation_baselines(benchmark):
    """Fig. 27 / Appendix E: the decision tree beats LIME and LEMNA on
    both accuracy and RMSE for every agent."""
    result = run_once(benchmark, "fig27")
    m = result.metrics
    # Accuracy: Metis within noise of (or above) the baselines' best-k.
    assert m["Pensieve_metis_acc"] > m["Pensieve_lime_best_acc"] - 0.10
    assert m["Pensieve_metis_acc"] > 0.75
    assert m["AuTO-lRLA_metis_acc"] > 0.75
    # RMSE: clear wins where the paper reports them strongest.
    assert m["AuTO-lRLA_metis_rmse"] < m["AuTO-lRLA_lime_best_rmse"]
    assert m["AuTO-lRLA_metis_rmse"] < m["AuTO-lRLA_lemna_best_rmse"]
    assert m["AuTO-sRLA_metis_rmse"] < m["AuTO-sRLA_lemna_best_rmse"]


def test_bench_fig28_leaf_sensitivity(benchmark):
    """Fig. 28 / Appendix F.1: a wide range of leaf budgets performs
    within 10% of the best accuracy."""
    result = run_once(benchmark, "fig28")
    assert result.metrics["pensieve_acc_range"] < 0.10
    assert result.metrics["pensieve_best_acc"] > 0.7
    assert result.metrics["lrla_best_acc"] > 0.7


def test_bench_fig31_overhead(benchmark):
    """Fig. 31 / Appendix G: extraction well under a minute, mask search
    in seconds."""
    result = run_once(benchmark, "fig31")
    assert result.metrics["max_tree_fit_seconds"] < 60.0
    assert result.metrics["mask_search_seconds"] < 60.0
