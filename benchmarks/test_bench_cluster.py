"""Micro-benchmark: sharded multi-process serving vs the single-process
MicroBatcher.

PR 3's serving stack tops out at one GIL-bound batcher thread; the
cluster tier (``repro.serve.cluster``) shards the registry across
worker processes with shared-memory artifacts and adds an asyncio bulk
path.  This benchmark drives the *same distilled ABR workload* both
ways and records the scaling headline:

* **single-process** — the PR-3 `MicroBatcher` baselines: 64 threaded
  closed-loop clients (the `BENCH_serve.json` ``batched_rps`` shape)
  and the server's own bulk ``predict`` (per-row futures, still one
  batcher thread);
* **cluster** — a 2-shard (``CLUSTER_SHARDS`` to override)
  :class:`ShardedPolicyService`: async coroutine closed-loop clients
  for the latency view, and the chunked bulk array path for aggregate
  throughput.

The local floor asserts the cluster's aggregate throughput at >= 2x the
single-process MicroBatcher closed-loop baseline (measured ~4x here;
the bulk-vs-bulk ratio, ~2x, is recorded unasserted).  Results append
to ``BENCH_cluster.json``; ``BENCH_REPORT_ONLY=1`` records without
asserting (CI smoke mode).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from bench_io import record_run
from test_bench_serve import _distilled_abr

from repro.serve import PolicyArtifact, PolicyServer
from repro.serve.cluster import ShardedPolicyService
from repro.serve.loadgen import run_load, run_load_async

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_cluster.json"

REPORT_ONLY = bool(os.environ.get("BENCH_REPORT_ONLY"))
N_SHARDS = int(os.environ.get("CLUSTER_SHARDS", "2"))

N_CLIENTS = 64
POOL_ROWS = 8192
BULK_CHUNK = 256

MIN_CLUSTER_SPEEDUP = 2.0
#: Apples-to-apples floor: cluster bulk must also beat the single
#: process's own *best* mode (its bulk predict path), or the headline
#: would be measuring batching, not sharding.  Measured ~2.8x locally.
MIN_SPEEDUP_VS_BEST = 1.5


def _bulk_rps(server, model: str, pool: np.ndarray, passes: int) -> float:
    """Rows/s of a server's synchronous bulk predict over the pool."""
    server.predict(model, pool[:64])  # warm-up
    start = time.perf_counter()
    for _ in range(passes):
        server.predict(model, pool)
    return passes * pool.shape[0] / (time.perf_counter() - start)


def test_bench_cluster_scaling():
    tree, abr_states = _distilled_abr()
    artifact = PolicyArtifact.from_tree(tree, name="abr-distilled")
    pool = abr_states[
        np.random.default_rng(0).integers(0, len(abr_states), POOL_ROWS)
    ]

    # ------------------------------------------------------------------
    # single-process MicroBatcher baselines (the PR-3 serving stack)
    # ------------------------------------------------------------------
    with PolicyServer(max_batch=64, max_delay_s=1e-3) as server:
        server.publish("abr", artifact)
        server.predict("abr", pool[:64])  # warm-up
        single_closed = run_load(
            server, "abr", pool[:4096],
            n_clients=N_CLIENTS, scenario="single-closed-loop",
        )
        single_bulk_rps = _bulk_rps(server, "abr", pool, passes=3)

    # ------------------------------------------------------------------
    # sharded multi-process cluster, same artifact, same workload
    # ------------------------------------------------------------------
    with ShardedPolicyService(
        n_shards=N_SHARDS, max_batch=128, max_delay_s=1e-3,
        adaptive_delay=True,
    ) as service:
        service.publish("abr", artifact)
        service.predict("abr", pool[:64])  # warm-up
        cluster_closed = run_load_async(
            service, "abr", pool[:4096],
            n_clients=N_CLIENTS, scenario="cluster-closed-loop",
        )
        cluster_bulk = run_load_async(
            service, "abr", pool,
            n_clients=16, chunk=BULK_CHUNK, repeats=3,
            scenario="cluster-bulk",
        )
        view = service.cluster_metrics()
        batching = service.batching_state()
    per_shard = {
        str(shard["shard"]): int(
            shard["models"].get("abr", {}).get("requests", 0)
        )
        for shard in view["shards"]
    }

    single_best_rps = max(single_closed.throughput_rps, single_bulk_rps)
    speedup_vs_batcher = (
        cluster_bulk.throughput_rps / single_closed.throughput_rps
    )
    speedup_vs_best = cluster_bulk.throughput_rps / single_best_rps

    record = {
        "benchmark": "cluster",
        "n_shards": N_SHARDS,
        "single_process": {
            "closed_loop_rps": single_closed.throughput_rps,
            "closed_loop_p50_ms": single_closed.latency_p50_ms,
            "closed_loop_p99_ms": single_closed.latency_p99_ms,
            "bulk_rps": single_bulk_rps,
        },
        "cluster": {
            "closed_loop_rps": cluster_closed.throughput_rps,
            "closed_loop_p50_ms": cluster_closed.latency_p50_ms,
            "closed_loop_p99_ms": cluster_closed.latency_p99_ms,
            "bulk_rps": cluster_bulk.throughput_rps,
            "bulk_chunk": BULK_CHUNK,
            "per_shard_requests": per_shard,
            "adaptive_delay": batching,
        },
        "aggregate_speedup_vs_single_process": speedup_vs_batcher,
        "speedup_vs_single_best_mode": speedup_vs_best,
    }
    record_run(BENCH_PATH, record)

    if REPORT_ONLY:
        return
    assert single_closed.n_errors == 0
    assert cluster_closed.n_errors == 0 and cluster_bulk.n_errors == 0
    # both shards actually served
    assert all(count > 0 for count in per_shard.values())
    assert speedup_vs_batcher >= MIN_CLUSTER_SPEEDUP, (
        f"cluster bulk only {speedup_vs_batcher:.1f}x over the "
        f"single-process MicroBatcher "
        f"({cluster_bulk.throughput_rps:.0f} vs "
        f"{single_closed.throughput_rps:.0f} req/s)"
    )
    assert speedup_vs_best >= MIN_SPEEDUP_VS_BEST, (
        f"cluster bulk only {speedup_vs_best:.2f}x over the best "
        f"single-process mode ({cluster_bulk.throughput_rps:.0f} vs "
        f"{single_best_rps:.0f} req/s) — sharding is not paying for "
        f"itself"
    )
