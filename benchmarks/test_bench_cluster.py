"""Micro-benchmark: the elastic sharded cluster vs the single-process
MicroBatcher.

PR 3's serving stack tops out at one GIL-bound batcher thread; the
cluster tier (``repro.serve.cluster``) shards the registry across
worker processes with shared-memory artifacts and adds an asyncio bulk
path.  Three benchmarks here, all appending to ``BENCH_cluster.json``
(see ``docs/benchmarks.md`` for every field):

* **scaling** — the same distilled ABR workload through the PR-3
  single-process baselines (64 threaded closed-loop clients; the
  server's own bulk ``predict``) and a 2-shard (``CLUSTER_SHARDS`` to
  override) :class:`ShardedPolicyService` (async closed loop for the
  latency view, the chunked bulk array path for aggregate throughput).
  Local floor: cluster bulk >= 2x the single-process closed loop
  (measured ~4x) and >= 1.5x the best single-process mode (~2.8x).
* **routing** — a skewed workload (one expensive synthetic model kept
  continuously in flight next to a cheap high-concurrency one) through
  the same 2-shard cluster under round-robin vs least-loaded routing.
  Round-robin is load-blind, so it parks cheap groups behind an
  in-flight expensive batch about half the time; the load-aware router
  must beat its throughput on the contended cheap workload (local
  floor 1.02x asserts the win direction; measured ~1.35x).
* **elasticity** — autoscaler scale-up/scale-down event counts under a
  saturate-then-idle cycle, and shard-kill recovery under ``self_heal``
  (time until a replacement replica serves, replica-state fingerprint
  equality, zero dropped futures).
* **transport** — the same workload through the same fleet over both
  transports: single-host pipes (the zero-regression default) vs
  localhost TCP sockets speaking the same wire protocol.  Records the
  socket path's dispatch-latency overhead (closed-loop p50/p99 delta)
  and aggregate-throughput ratio, plus the per-transport wire byte
  counters from ``cluster_metrics()``.  Local floor only asserts the
  socket path stays within an order of magnitude — the record is the
  deliverable, not a race.

``BENCH_REPORT_ONLY=1`` records without asserting (CI smoke mode —
shared runners cannot promise multi-process timing floors).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path

import numpy as np

from bench_io import record_run
from test_bench_serve import _distilled_abr

from repro.serve import PolicyArtifact, PolicyServer
from repro.serve.cluster import AutoscaleConfig, ShardedPolicyService
from repro.serve.loadgen import (
    run_load,
    run_load_async,
    run_mixed_load_async,
    synthetic_artifact,
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_cluster.json"

REPORT_ONLY = bool(os.environ.get("BENCH_REPORT_ONLY"))
N_SHARDS = int(os.environ.get("CLUSTER_SHARDS", "2"))

N_CLIENTS = 64
POOL_ROWS = 8192
BULK_CHUNK = 256

MIN_CLUSTER_SPEEDUP = 2.0
#: Apples-to-apples floor: cluster bulk must also beat the single
#: process's own *best* mode (its bulk predict path), or the headline
#: would be measuring batching, not sharding.  Measured ~2.8x locally.
MIN_SPEEDUP_VS_BEST = 1.5
#: Load-aware routing must beat round-robin under the skewed mix.
#: Typical measurement is ~1.35x (even on one core); noisy contended
#: runs have dipped to ~1.08x, so the floor asserts the *direction* of
#: the win with a small margin rather than its magnitude — at or below
#: 1.0x the router has stopped reading the load signals.
MIN_ROUTING_GAIN = 1.02
#: The localhost-socket path serializes every batch through the wire
#: codec plus a TCP hop, so it is expected to trail the pipe path; the
#: floor only catches a catastrophic regression (a stalled reader, a
#: per-request reconnect), not codec cost.  Measured ~0.6-0.9x locally.
MIN_SOCKET_THROUGHPUT_RATIO = 0.1


def _bulk_rps(server, model: str, pool: np.ndarray, passes: int) -> float:
    """Rows/s of a server's synchronous bulk predict over the pool."""
    server.predict(model, pool[:64])  # warm-up
    start = time.perf_counter()
    for _ in range(passes):
        server.predict(model, pool)
    return passes * pool.shape[0] / (time.perf_counter() - start)


def test_bench_cluster_scaling():
    tree, abr_states = _distilled_abr()
    artifact = PolicyArtifact.from_tree(tree, name="abr-distilled")
    pool = abr_states[
        np.random.default_rng(0).integers(0, len(abr_states), POOL_ROWS)
    ]

    # ------------------------------------------------------------------
    # single-process MicroBatcher baselines (the PR-3 serving stack)
    # ------------------------------------------------------------------
    with PolicyServer(max_batch=64, max_delay_s=1e-3) as server:
        server.publish("abr", artifact)
        server.predict("abr", pool[:64])  # warm-up
        single_closed = run_load(
            server, "abr", pool[:4096],
            n_clients=N_CLIENTS, scenario="single-closed-loop",
            warmup=8,
        )
        single_bulk_rps = _bulk_rps(server, "abr", pool, passes=3)

    # ------------------------------------------------------------------
    # sharded multi-process cluster, same artifact, same workload
    # ------------------------------------------------------------------
    with ShardedPolicyService(
        n_shards=N_SHARDS, max_batch=128, max_delay_s=1e-3,
        adaptive_delay=True,
    ) as service:
        service.publish("abr", artifact)
        service.predict("abr", pool[:64])  # warm-up
        cluster_closed = run_load_async(
            service, "abr", pool[:4096],
            n_clients=N_CLIENTS, scenario="cluster-closed-loop",
            warmup=8,
        )
        cluster_bulk = run_load_async(
            service, "abr", pool,
            n_clients=16, chunk=BULK_CHUNK, repeats=3,
            scenario="cluster-bulk",
        )
        view = service.cluster_metrics()
        batching = service.batching_state()
    per_shard = {
        str(shard["shard"]): int(
            shard["models"].get("abr", {}).get("requests", 0)
        )
        for shard in view["shards"]
    }

    single_best_rps = max(single_closed.throughput_rps, single_bulk_rps)
    speedup_vs_batcher = (
        cluster_bulk.throughput_rps / single_closed.throughput_rps
    )
    speedup_vs_best = cluster_bulk.throughput_rps / single_best_rps

    record = {
        "benchmark": "cluster",
        "n_shards": N_SHARDS,
        "single_process": {
            "closed_loop_rps": single_closed.throughput_rps,
            "closed_loop_p50_ms": single_closed.latency_p50_ms,
            "closed_loop_p99_ms": single_closed.latency_p99_ms,
            "bulk_rps": single_bulk_rps,
        },
        "cluster": {
            "closed_loop_rps": cluster_closed.throughput_rps,
            "closed_loop_p50_ms": cluster_closed.latency_p50_ms,
            "closed_loop_p99_ms": cluster_closed.latency_p99_ms,
            "bulk_rps": cluster_bulk.throughput_rps,
            "bulk_chunk": BULK_CHUNK,
            "per_shard_requests": per_shard,
            "adaptive_delay": batching,
        },
        "aggregate_speedup_vs_single_process": speedup_vs_batcher,
        "speedup_vs_single_best_mode": speedup_vs_best,
    }
    record_run(BENCH_PATH, record)

    if REPORT_ONLY:
        return
    assert single_closed.n_errors == 0
    assert cluster_closed.n_errors == 0 and cluster_bulk.n_errors == 0
    # both shards actually served
    assert all(count > 0 for count in per_shard.values())
    assert speedup_vs_batcher >= MIN_CLUSTER_SPEEDUP, (
        f"cluster bulk only {speedup_vs_batcher:.1f}x over the "
        f"single-process MicroBatcher "
        f"({cluster_bulk.throughput_rps:.0f} vs "
        f"{single_closed.throughput_rps:.0f} req/s)"
    )
    assert speedup_vs_best >= MIN_SPEEDUP_VS_BEST, (
        f"cluster bulk only {speedup_vs_best:.2f}x over the best "
        f"single-process mode ({cluster_bulk.throughput_rps:.0f} vs "
        f"{single_best_rps:.0f} req/s) — sharding is not paying for "
        f"itself"
    )


# ----------------------------------------------------------------------
# routing: load-aware vs round-robin under a skewed workload
# ----------------------------------------------------------------------
HEAVY_CALL_S = 3e-3
LIGHT_CALL_S = 1e-4
SKEW_FEATURES = 8


def _skewed_mix_rps(routing: str, pool: np.ndarray) -> dict:
    """The heavy+light mix under ``routing``.

    The heavy job (2 clients, bursts of 3ms-per-call requests) is
    sized to outlast the light job, so the light traffic contends with
    heavy batches for its whole run; the light job's throughput and
    tail latency are the routing-quality reading.
    """
    with ShardedPolicyService(
        n_shards=N_SHARDS, routing=routing, max_batch=64,
        max_delay_s=5e-4,
    ) as service:
        service.publish(
            "heavy", synthetic_artifact("heavy", HEAVY_CALL_S,
                                        n_features=SKEW_FEATURES)
        )
        service.publish(
            "light", synthetic_artifact("light", LIGHT_CALL_S,
                                        n_features=SKEW_FEATURES)
        )
        result = run_mixed_load_async(
            service,
            jobs=[
                {"model": "light", "states": pool[:2048],
                 "n_clients": 16, "scenario": "light"},
                # one closed-loop heavy client keeps ~one shard's worth
                # of 3ms batches continuously in flight — the skew a
                # load-blind placement cannot see
                {"model": "heavy", "states": pool[:200],
                 "n_clients": 1, "scenario": "heavy"},
            ],
            warmup=4,
        )
        return {
            "aggregate_rps": result["aggregate"]["throughput_rps"],
            "n_errors": result["aggregate"]["n_errors"],
            "light_rps": result["jobs"]["light"].throughput_rps,
            "light_p50_ms": result["jobs"]["light"].latency_p50_ms,
            "light_p99_ms": result["jobs"]["light"].latency_p99_ms,
            "heavy_rps": result["jobs"]["heavy"].throughput_rps,
        }


def test_bench_routing_skew():
    """Load-aware routing must beat round-robin on a skewed mix.

    Round-robin parks ~half the light groups behind an in-flight 3ms
    heavy batch; least-loaded reads the in-flight/EWMA signals and
    sends them to the idle shard.  The floor is on the light job's
    throughput (the heavy job is capacity-bound either way).
    """
    rng = np.random.default_rng(7)
    pool = rng.uniform(0, 1, (2048, SKEW_FEATURES))

    def best_of(routing: str, attempts: int = 2) -> dict:
        # Best-of-N per config (same interference rejection as
        # _bulk_rps): one descheduling blip on a loaded box would
        # otherwise misattribute machine noise to the router.
        runs = [_skewed_mix_rps(routing, pool) for _ in range(attempts)]
        return max(runs, key=lambda run: run["light_rps"])

    round_robin = best_of("round_robin")
    least_loaded = best_of("least_loaded")
    light_gain = (
        least_loaded["light_rps"] / round_robin["light_rps"]
        if round_robin["light_rps"] > 0 else 0.0
    )
    aggregate_gain = (
        least_loaded["aggregate_rps"] / round_robin["aggregate_rps"]
        if round_robin["aggregate_rps"] > 0 else 0.0
    )

    record = {
        "benchmark": "cluster-routing",
        "n_shards": N_SHARDS,
        "heavy_call_s": HEAVY_CALL_S,
        "light_call_s": LIGHT_CALL_S,
        "round_robin": round_robin,
        "least_loaded": least_loaded,
        "routing_gain_light": light_gain,
        "routing_gain_aggregate": aggregate_gain,
    }
    record_run(BENCH_PATH, record)

    if REPORT_ONLY:
        return
    assert round_robin["n_errors"] == 0
    assert least_loaded["n_errors"] == 0
    assert light_gain >= MIN_ROUTING_GAIN, (
        f"least-loaded routing only {light_gain:.2f}x round-robin on "
        f"the contended light workload "
        f"({least_loaded['light_rps']:.0f} vs "
        f"{round_robin['light_rps']:.0f} req/s)"
    )


# ----------------------------------------------------------------------
# elasticity: autoscaler events + shard-kill recovery
# ----------------------------------------------------------------------
def test_bench_cluster_elasticity():
    """Record autoscaler event counts and self-heal recovery metrics."""
    tree, abr_states = _distilled_abr()
    artifact = PolicyArtifact.from_tree(tree, name="abr-distilled")
    pool = abr_states[
        np.random.default_rng(1).integers(0, len(abr_states), 2048)
    ]

    # --- autoscaling under a saturate-then-idle cycle -----------------
    config = AutoscaleConfig(
        min_shards=1, max_shards=3, interval_s=0.05, cooldown_s=0.25,
        scale_up_fill=0.35, scale_down_fill=0.1, idle_ticks_down=4,
    )
    with ShardedPolicyService(
        n_shards=1, adaptive_delay=True, max_batch=16, max_delay_s=1e-3,
        autoscale=config,
    ) as service:
        service.publish("abr", artifact)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            run_load(service, "abr", pool[:512], n_clients=16, repeats=2)
            if service.autoscaler.scale_ups >= 1:
                break
        peak_shards = service.cluster_metrics()["live_shards"]
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if service.cluster_metrics()["live_shards"] == 1:
                break
            time.sleep(0.1)
        autoscale_snap = service.autoscaler.snapshot()
        idle_shards = service.cluster_metrics()["live_shards"]

    # --- shard-kill recovery under self_heal --------------------------
    with ShardedPolicyService(
        n_shards=N_SHARDS, self_heal=True, max_delay_s=1e-3,
    ) as service:
        service.publish("abr", artifact, alias="abr/prod")
        fingerprint_before = repr(service.replica_states()["parent"])
        futures = []
        stop = threading.Event()

        def pump():
            while not stop.is_set():
                futures.append(service.submit("abr/prod", pool[0]))
                time.sleep(0.001)

        pumper = threading.Thread(target=pump, daemon=True)
        pumper.start()
        time.sleep(0.05)
        killed_at = time.perf_counter()
        service.kill_shard(service._shards[0].shard_id)
        recovery_s = None
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            if service.cluster_metrics()["live_shards"] == N_SHARDS:
                recovery_s = time.perf_counter() - killed_at
                break
            time.sleep(0.01)
        stop.set()
        pumper.join(timeout=10)
        # Count hung futures instead of raising on the first one — the
        # recorded dropped_futures metric must be able to go nonzero.
        results = []
        dropped = 0
        for future in futures:
            try:
                results.append(future.result(timeout=30))
            except FutureTimeoutError:  # builtin alias only since 3.11
                dropped += 1
        failed = sum(1 for r in results if not r.ok)
        states = service.replica_states()
        replicas_identical = all(
            repr(state) == fingerprint_before
            for state in states["shards"].values()
        ) and repr(states["parent"]) == fingerprint_before

    record = {
        "benchmark": "cluster-elasticity",
        "autoscale": {
            "scale_ups": autoscale_snap["scale_ups"],
            "scale_downs": autoscale_snap["scale_downs"],
            "peak_live_shards": peak_shards,
            "idle_live_shards": idle_shards,
        },
        "recovery": {
            "n_shards": N_SHARDS,
            "recovery_s": recovery_s,
            "requests_during_kill": len(futures),
            "structured_failures": failed,
            "dropped_futures": dropped,
            "replicas_identical_after_heal": replicas_identical,
        },
    }
    record_run(BENCH_PATH, record)

    if REPORT_ONLY:
        return
    assert autoscale_snap["scale_ups"] >= 1, autoscale_snap
    assert autoscale_snap["scale_downs"] >= 1, autoscale_snap
    assert idle_shards == 1
    assert recovery_s is not None, "replacement shard never came up"
    assert dropped == 0, f"{dropped} futures dropped during the kill"
    assert replicas_identical, "healed replica diverged"


# ----------------------------------------------------------------------
# transport: single-host pipe vs localhost socket overhead
# ----------------------------------------------------------------------
def _transport_run(transport: str, artifact, pool: np.ndarray) -> dict:
    """The distilled-ABR workload through a fleet on ``transport``."""
    with ShardedPolicyService(
        n_shards=N_SHARDS, max_batch=128, max_delay_s=1e-3,
        transport=transport,
    ) as service:
        service.publish("abr", artifact)
        service.predict("abr", pool[:64])  # warm-up
        closed = run_load_async(
            service, "abr", pool[:2048],
            n_clients=16, scenario=f"{transport}-closed-loop", warmup=8,
        )
        bulk = run_load_async(
            service, "abr", pool,
            n_clients=16, chunk=BULK_CHUNK, repeats=2,
            scenario=f"{transport}-bulk",
        )
        wire = service.cluster_metrics()["transport"]
    return {
        "closed_loop_rps": closed.throughput_rps,
        "closed_loop_p50_ms": closed.latency_p50_ms,
        "closed_loop_p99_ms": closed.latency_p99_ms,
        "bulk_rps": bulk.throughput_rps,
        "n_errors": closed.n_errors + bulk.n_errors,
        "bytes_sent": sum(
            shard["bytes_sent"] for shard in wire["per_shard"].values()
        ),
        "bytes_received": sum(
            shard["bytes_received"]
            for shard in wire["per_shard"].values()
        ),
    }


def test_bench_cluster_transport_overhead():
    """Record what the localhost-socket transport costs vs pipes.

    Same fleet size, same artifact, same workload — the only moving
    part is how frames reach the workers.  The dispatch-latency deltas
    and the throughput ratio are the published overhead numbers the
    docs cite; the byte counters show the wire traffic each path paid.
    """
    tree, abr_states = _distilled_abr()
    artifact = PolicyArtifact.from_tree(tree, name="abr-distilled")
    pool = abr_states[
        np.random.default_rng(2).integers(0, len(abr_states), 4096)
    ]

    pipe = _transport_run("pipe", artifact, pool)
    sock = _transport_run("socket", artifact, pool)

    throughput_ratio = (
        sock["bulk_rps"] / pipe["bulk_rps"] if pipe["bulk_rps"] > 0
        else 0.0
    )
    record = {
        "benchmark": "cluster-transport",
        "n_shards": N_SHARDS,
        "pipe": pipe,
        "socket": sock,
        "socket_dispatch_overhead_p50_ms": (
            sock["closed_loop_p50_ms"] - pipe["closed_loop_p50_ms"]
        ),
        "socket_dispatch_overhead_p99_ms": (
            sock["closed_loop_p99_ms"] - pipe["closed_loop_p99_ms"]
        ),
        "socket_throughput_ratio": throughput_ratio,
    }
    record_run(BENCH_PATH, record)

    if REPORT_ONLY:
        return
    assert pipe["n_errors"] == 0
    assert sock["n_errors"] == 0
    assert sock["bytes_sent"] > 0 and sock["bytes_received"] > 0
    assert throughput_ratio >= MIN_SOCKET_THROUGHPUT_RATIO, (
        f"socket transport only {throughput_ratio:.2f}x the pipe "
        f"path ({sock['bulk_rps']:.0f} vs {pipe['bulk_rps']:.0f} "
        f"req/s) — the wire path has regressed beyond codec cost"
    )
