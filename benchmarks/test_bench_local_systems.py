"""Benchmarks regenerating the paper's local-system (Pensieve/AuTO)
tables and figures, asserting each one's headline shape."""

from benchmarks.conftest import run_once


def test_bench_fig7_tree_interpretation(benchmark):
    """Fig. 7: the distilled tree is small and uses the paper's decision
    variables; the root splits on a meaningful feature."""
    result = run_once(benchmark, "fig7")
    assert result.metrics["tree_leaves"] <= 200
    assert result.metrics["n_top_features"] >= 2
    assert result.raw["root_feature"] in {"r_t", "B", "theta_t", "T_t"}


def test_bench_fig11_model_design(benchmark):
    """Fig. 11: the interpretation-guided structure does not lose QoE and
    the experiment reports a meaningful comparison."""
    result = run_once(benchmark, "fig11")
    assert result.metrics["qoe_modified"] > 0
    # Shape: modified >= original within statistical slack.
    assert result.metrics["improvement_pct"] > -5.0


def test_bench_fig12_bitrate_frequencies(benchmark):
    """Fig. 12: the teacher rarely uses the median bitrates and the tree
    mimics its selection distribution."""
    result = run_once(benchmark, "fig12")
    assert result.metrics["teacher_rare_bitrate_freq"] < 0.10
    assert result.metrics["teacher_student_freq_gap"] < 0.25


def test_bench_fig13_fixed_link(benchmark):
    """Fig. 13: the tree faithfully mimics the teacher on fixed links,
    where rMPC stays stable."""
    result = run_once(benchmark, "fig13")
    assert result.metrics["tree_mimics_teacher"] > 0.7
    assert result.metrics["rmpc_switches_3000kbps"] <= 10


def test_bench_fig14_oversampling(benchmark):
    """Fig. 14: oversampling missing bitrates does not hurt, and helps on
    at least one trace family."""
    result = run_once(benchmark, "fig14")
    gains = [
        result.metrics["oversampled_vs_plain_pct_hsdpa"],
        result.metrics["oversampled_vs_plain_pct_fcc"],
    ]
    assert max(gains) > -1.0


def test_bench_fig15_performance_maintenance(benchmark):
    """Fig. 15: conversion keeps application performance (single-digit
    percent QoE loss; FCT within a few percent)."""
    result = run_once(benchmark, "fig15")
    assert result.metrics["pensieve_degradation_pct_hsdpa"] < 10.0
    assert abs(result.metrics["auto_degradation_pct_websearch"]) < 5.0
    assert abs(result.metrics["auto_degradation_pct_datamining"]) < 5.0


def test_bench_fig16_latency_and_coverage(benchmark):
    """Fig. 16: the tree is >10x faster per decision (modeled ~27x) and
    covers more flows."""
    result = run_once(benchmark, "fig16")
    assert result.metrics["latency_speedup"] > 10.0
    assert result.metrics["measured_wallclock_speedup"] > 2.0
    assert result.metrics["dm_flow_coverage_gain"] > 0.0


def test_bench_fig17_resources(benchmark):
    """Fig. 17: median flows improve under tree scheduling and the tree's
    client footprint is orders of magnitude smaller."""
    result = run_once(benchmark, "fig17")
    assert result.metrics["median_fct_change_pct_websearch"] < 0.0
    assert result.metrics["page_size_ratio"] > 20.0
    assert result.metrics["memory_ratio"] > 2.0


def test_bench_fig20_resampling(benchmark):
    """Fig. 20: the resampling comparison runs end to end on every trace
    (the direction of the effect is documented in EXPERIMENTS.md)."""
    result = run_once(benchmark, "fig20")
    assert 0.0 <= result.metrics["improved_fraction"] <= 1.0
    assert result.metrics["mean_qoe_with"] > 0
