"""Shared ``BENCH_*.json`` trajectory recording for the micro-benchmarks.

Every benchmark appends its latest record to a rolling history (so
speedups stay comparable across PRs) and mirrors it under ``latest``.
One implementation here keeps the format in sync across
``BENCH_tree.json``, ``BENCH_fit.json``, and ``BENCH_serve.json``.
"""

from __future__ import annotations

import json
from pathlib import Path


def record_run(path: Path, record: dict, keep: int = 50) -> None:
    """Append ``record`` to the trajectory file at ``path``."""
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text()).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    history.append(record)
    path.write_text(
        json.dumps({"runs": history[-keep:], "latest": record}, indent=2)
        + "\n"
    )
