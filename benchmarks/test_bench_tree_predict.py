"""Micro-benchmarks: flat-array batch predict vs the seed per-row loop,
and the compiled native kernel vs the flat numpy walk.

Guards two headline claims and records both trajectories to
``BENCH_tree.json`` at the repo root so speedups stay comparable across
PRs (the paper's premise is that tree inference is datapath-cheap; a
regression here silently breaks every rollout-heavy experiment):

* ``tree_batch_predict`` — the vectorized ``FlatTree`` engine must beat
  the legacy per-row Python traversal by >= 20x on a 200-leaf tree with
  100k rows.  Timed with the backend pinned to numpy so the trajectory
  keeps measuring the same engine it always has.
* ``tree_native_predict`` — the per-artifact compiled C kernel vs that
  same numpy walk, bit-for-bit equivalence asserted on both argmax and
  leaf value vectors before timing.  Floor-guarded at 1.0x (native must
  never lose); skipped when the host has no C compiler.

Set ``BENCH_REPORT_ONLY=1`` to record without asserting (CI smoke mode).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from bench_io import record_run
from repro.core.tree import DecisionTreeClassifier, native

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_tree.json"
N_ROWS = 100_000
N_FEATURES = 8
N_LEAVES = 200


def _fitted_tree(rng):
    x_train = rng.normal(size=(20_000, N_FEATURES))
    y_train = (
        (x_train[:, 0] > 0).astype(int) * 3
        + (x_train[:, 1] + x_train[:, 2] > 0.3).astype(int)
        + (x_train[:, 3] > 1.0).astype(int) * 2
    )
    return DecisionTreeClassifier(max_leaf_nodes=N_LEAVES).fit(
        x_train, y_train
    )


def _legacy_predict_per_row(tree: DecisionTreeClassifier,
                            x: np.ndarray) -> np.ndarray:
    """The seed's inference shape: one Python node walk per row."""
    out = np.empty(x.shape[0], dtype=int)
    for i in range(x.shape[0]):
        out[i] = int(np.argmax(tree.predict_one(x[i])))
    return out


def _time(fn, repeats: int = 3) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_tree_predict():
    rng = np.random.default_rng(7)
    tree = _fitted_tree(rng)
    x = rng.normal(size=(N_ROWS, N_FEATURES))
    flat = tree.flat

    # Correctness first: both paths must agree before timing means much.
    sample = x[:2_000]
    assert np.array_equal(
        tree.predict(sample), _legacy_predict_per_row(tree, sample)
    )

    legacy_s = _time(lambda: _legacy_predict_per_row(tree, x), repeats=1)
    # Pin the numpy backend: with a compiler present, auto mode would
    # swap the compiled kernel in at this batch size and silently turn
    # the flat-engine trajectory into the native one.
    flat_s = _time(
        lambda: flat.predict_class(x, backend="numpy"), repeats=3
    )
    legacy_rows_s = N_ROWS / legacy_s
    flat_rows_s = N_ROWS / flat_s
    speedup = flat_rows_s / legacy_rows_s

    record = {
        "benchmark": "tree_batch_predict",
        "n_rows": N_ROWS,
        "n_features": N_FEATURES,
        "n_leaves": int(tree.n_leaves),
        "tree_depth": int(tree.depth),
        "legacy_per_row_rows_per_s": legacy_rows_s,
        "flat_batch_rows_per_s": flat_rows_s,
        "speedup": speedup,
    }
    record_run(BENCH_PATH, record)

    if os.environ.get("BENCH_REPORT_ONLY"):
        return
    assert speedup >= 20.0, (
        f"flat batch predict only {speedup:.1f}x over the per-row loop "
        f"({flat_rows_s:,.0f} vs {legacy_rows_s:,.0f} rows/s)"
    )


def test_bench_tree_native_predict():
    if native.find_compiler() is None:
        pytest.skip("no C compiler on PATH")
    rng = np.random.default_rng(7)
    tree = _fitted_tree(rng)
    x = rng.normal(size=(N_ROWS, N_FEATURES))
    flat = tree.flat

    kernel = flat.native_kernel(compile=True)
    assert kernel is not None, native.last_error()

    # Bit-for-bit before timing: argmax classes AND full leaf value
    # vectors (the proba surface) must match the numpy walk exactly.
    assert np.array_equal(
        flat.predict_class(x, backend="native"),
        flat.predict_class(x, backend="numpy"),
    )
    assert np.array_equal(
        flat.leaf_values(x, backend="native"),
        flat.leaf_values(x, backend="numpy"),
    )

    numpy_s = _time(lambda: flat.predict_class(x, backend="numpy"))
    native_s = _time(lambda: flat.predict_class(x, backend="native"))
    numpy_rows_s = N_ROWS / numpy_s
    native_rows_s = N_ROWS / native_s
    speedup = native_rows_s / numpy_rows_s

    record = {
        "benchmark": "tree_native_predict",
        "n_rows": N_ROWS,
        "n_features": N_FEATURES,
        "n_leaves": int(tree.n_leaves),
        "tree_depth": int(tree.depth),
        "kernel_hash": kernel.hash,
        "numpy_rows_per_s": numpy_rows_s,
        "native_rows_per_s": native_rows_s,
        "speedup": speedup,
    }
    record_run(BENCH_PATH, record)

    if os.environ.get("BENCH_REPORT_ONLY"):
        return
    # Hard floor only: the kernel must never *lose* to numpy.  The
    # recorded trajectory is where the real (~5-7x) margin is tracked;
    # asserting it would make the benchmark flaky on loaded CI hosts.
    assert speedup >= 1.0, (
        f"native kernel slower than numpy ({native_rows_s:,.0f} vs "
        f"{numpy_rows_s:,.0f} rows/s)"
    )
