"""Micro-benchmark: flat-array batch predict vs the seed per-row loop.

Guards the PR's headline claim — the vectorized ``FlatTree`` engine must
beat the legacy per-row Python traversal by >= 20x on a 200-leaf tree
with 100k rows — and records the measured trajectory to
``BENCH_tree.json`` at the repo root so speedups stay comparable across
PRs (the paper's premise is that tree inference is datapath-cheap; a
regression here silently breaks every rollout-heavy experiment).

Set ``BENCH_REPORT_ONLY=1`` to record without asserting (CI smoke mode).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from bench_io import record_run
from repro.core.tree import DecisionTreeClassifier

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_tree.json"
N_ROWS = 100_000
N_FEATURES = 8
N_LEAVES = 200


def _legacy_predict_per_row(tree: DecisionTreeClassifier,
                            x: np.ndarray) -> np.ndarray:
    """The seed's inference shape: one Python node walk per row."""
    out = np.empty(x.shape[0], dtype=int)
    for i in range(x.shape[0]):
        out[i] = int(np.argmax(tree.predict_one(x[i])))
    return out


def _time(fn, repeats: int = 3) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_tree_predict():
    rng = np.random.default_rng(7)
    x_train = rng.normal(size=(20_000, N_FEATURES))
    y_train = (
        (x_train[:, 0] > 0).astype(int) * 3
        + (x_train[:, 1] + x_train[:, 2] > 0.3).astype(int)
        + (x_train[:, 3] > 1.0).astype(int) * 2
    )
    tree = DecisionTreeClassifier(max_leaf_nodes=N_LEAVES).fit(
        x_train, y_train
    )
    x = rng.normal(size=(N_ROWS, N_FEATURES))

    # Correctness first: both paths must agree before timing means much.
    sample = x[:2_000]
    assert np.array_equal(
        tree.predict(sample), _legacy_predict_per_row(tree, sample)
    )

    legacy_s = _time(lambda: _legacy_predict_per_row(tree, x), repeats=1)
    flat_s = _time(lambda: tree.predict(x), repeats=3)
    legacy_rows_s = N_ROWS / legacy_s
    flat_rows_s = N_ROWS / flat_s
    speedup = flat_rows_s / legacy_rows_s

    record = {
        "benchmark": "tree_batch_predict",
        "n_rows": N_ROWS,
        "n_features": N_FEATURES,
        "n_leaves": int(tree.n_leaves),
        "tree_depth": int(tree.depth),
        "legacy_per_row_rows_per_s": legacy_rows_s,
        "flat_batch_rows_per_s": flat_rows_s,
        "speedup": speedup,
    }
    record_run(BENCH_PATH, record)

    if os.environ.get("BENCH_REPORT_ONLY"):
        return
    assert speedup >= 20.0, (
        f"flat batch predict only {speedup:.1f}x over the per-row loop "
        f"({flat_rows_s:,.0f} vs {legacy_rows_s:,.0f} rows/s)"
    )
