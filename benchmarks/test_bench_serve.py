"""Micro-benchmark: policy-serving throughput and tail latency.

The serving-side counterpart of ``test_bench_tree_fit``: PR 2 showed one
batched query per step beats a scalar loop 6.4x during *training*
collection; this benchmark guards the same coalescing win at the
*serving* boundary.  A distilled ABR tree is published to a live
:class:`PolicyServer` and driven two ways:

* **single-request loop** — one closed-loop client, no coalescing
  (``max_batch=1``): every decision pays the full queue + wakeup +
  single-row predict round trip (the seed deployment style);
* **microbatched** — 64 concurrent closed-loop clients against a
  coalescing server: the batcher answers whole flushes with one
  vectorized predict;
* **microbatched, native backend** — the same coalescing server with
  ``REPRO_TREE_BACKEND=native``, so every flush runs through the
  artifact's compiled C kernel instead of the numpy walk (recorded as
  ``batched_native_rps``; falls back to numpy — and says so in the
  record — when the host has no C compiler).

The floor asserted locally is ``>= 5x`` throughput for the microbatched
path.  The three load scenarios (ABR sessions, AuTO flow arrivals,
RouteNet routing queries) are each replayed against their own policy and
their p50/p99 latency recorded.  Results append to ``BENCH_serve.json``
at the repo root (same trajectory format as ``BENCH_tree.json``); set
``BENCH_REPORT_ONLY=1`` to record without asserting (CI smoke mode).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from bench_io import record_run

from repro.core.distill.rollout import collect_teacher_dataset_batch
from repro.core.distill.viper import distill_from_dataset
from repro.envs.abr import ABREnv, Video
from repro.envs.abr.env import STATE_DIM
from repro.envs.traces import trace_set
from repro.nn.policy import SoftmaxPolicy, ValueNet
from repro.serve import PolicyArtifact, PolicyServer
from repro.serve.loadgen import (
    flow_request_states,
    routing_request_states,
    run_load,
)
from repro.teachers.pensieve import PensieveTeacher
from repro.utils.rng import as_rng

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

REPORT_ONLY = bool(os.environ.get("BENCH_REPORT_ONLY"))

N_CONCURRENT_CLIENTS = 64
SERIAL_REQUESTS = 1_500
BATCHED_PASSES = 2  # each of the 64 clients replays its share this often

MIN_SERVE_SPEEDUP = 5.0


def _distilled_abr():
    """A distilled ABR tree + the session states it was trained on.

    The teacher is an untrained Pensieve-shaped MLP (decision *shape* is
    what matters for serving cost, not QoE), so the benchmark needs no
    training time and stays deterministic.
    """
    video = Video.synthetic(n_chunks=48, seed=7)
    traces = trace_set("hsdpa", 16, duration_s=120, seed=8)
    env = ABREnv(video, traces)
    teacher = PensieveTeacher(
        policy=SoftmaxPolicy(
            STATE_DIM, env.n_actions, hidden=(64, 32), seed=as_rng(0)
        ),
        value=ValueNet(STATE_DIM, seed=as_rng(0)),
    )
    dataset = collect_teacher_dataset_batch(env, teacher, 16, rng=1)
    student = distill_from_dataset(
        dataset, leaf_nodes=200, n_classes=env.n_actions
    )
    return student.tree, dataset.states


def _fit_scenario_tree(states: np.ndarray, n_classes: int = 4):
    """A small policy for a scenario: labels = load-quartile of column 0."""
    edges = np.quantile(states[:, 0], np.linspace(0, 1, n_classes + 1)[1:-1])
    labels = np.digitize(states[:, 0], edges)
    from repro.core.tree import DecisionTreeClassifier

    return DecisionTreeClassifier(
        n_classes=n_classes, max_leaf_nodes=64
    ).fit(states, labels)


@contextmanager
def _backend(mode):
    """Pin ``REPRO_TREE_BACKEND`` for one serving run."""
    prev = os.environ.get("REPRO_TREE_BACKEND")
    os.environ["REPRO_TREE_BACKEND"] = mode
    try:
        yield
    finally:
        if prev is None:
            del os.environ["REPRO_TREE_BACKEND"]
        else:
            os.environ["REPRO_TREE_BACKEND"] = prev


def test_bench_serve_throughput_and_scenarios():
    tree, abr_states = _distilled_abr()
    artifact = PolicyArtifact.from_tree(tree, name="abr-distilled")

    # ------------------------------------------------------------------
    # single-request loop vs microbatched serving on the same artifact
    # (both pinned to the numpy backend so the trajectory stays the
    # coalescing story it always measured)
    # ------------------------------------------------------------------
    pool = abr_states[
        np.random.default_rng(0).integers(0, len(abr_states), 8192)
    ]
    with _backend("numpy"), PolicyServer(
        max_batch=1, max_delay_s=0.0
    ) as server:
        server.publish("abr", artifact)
        server.predict("abr", pool[:64])  # warm-up
        serial = run_load(
            server, "abr", pool[:SERIAL_REQUESTS],
            n_clients=1, scenario="abr-serial",
        )
    with _backend("numpy"), PolicyServer(
        max_batch=N_CONCURRENT_CLIENTS, max_delay_s=1e-3
    ) as server:
        server.publish("abr", artifact)
        server.predict("abr", pool[:64])  # warm-up
        batched = run_load(
            server, "abr", pool,
            n_clients=N_CONCURRENT_CLIENTS, repeats=BATCHED_PASSES,
            scenario="abr-batched",
        )
        batch_sizes = server.metrics()["abr"]["batch_sizes"]
    speedup = batched.throughput_rps / serial.throughput_rps

    # ------------------------------------------------------------------
    # microbatched again, this time through the compiled native kernel
    # ------------------------------------------------------------------
    native_artifact = PolicyArtifact.from_tree(tree, name="abr-distilled")
    with _backend("native"), PolicyServer(
        max_batch=N_CONCURRENT_CLIENTS, max_delay_s=1e-3
    ) as server:
        server.publish("abr", native_artifact)
        server.predict("abr", pool[:64])  # warm-up
        batched_native = run_load(
            server, "abr", pool,
            n_clients=N_CONCURRENT_CLIENTS, repeats=BATCHED_PASSES,
            scenario="abr-batched-native",
        )
        backend_view = server.backend_report()["models"]["abr"]
    kernel_meta = native_artifact.meta.get("kernel") or {}

    # ------------------------------------------------------------------
    # three load scenarios, each against its own published policy
    # ------------------------------------------------------------------
    scenario_states = {
        "abr": abr_states,
        "flows": flow_request_states(duration_s=2.0, seed=3, min_rows=512),
        "routing": routing_request_states(n_queries=1024, seed=4),
    }
    scenario_reports = {}
    with PolicyServer(max_batch=64, max_delay_s=1e-3) as server:
        server.publish("abr", artifact, alias="abr/prod")
        for name in ("flows", "routing"):
            states = scenario_states[name]
            server.publish(
                name,
                PolicyArtifact.from_tree(
                    _fit_scenario_tree(states), name=f"{name}-policy"
                ),
                alias=f"{name}/prod",
            )
        for name, states in scenario_states.items():
            report = run_load(
                server, f"{name}/prod", states,
                n_clients=16, repeats=2, scenario=name,
            )
            assert report.n_errors == 0
            scenario_reports[name] = report.as_dict()

    record = {
        "benchmark": "serve",
        "serving": {
            "n_clients": N_CONCURRENT_CLIENTS,
            "serial_rps": serial.throughput_rps,
            "serial_p50_ms": serial.latency_p50_ms,
            "serial_p99_ms": serial.latency_p99_ms,
            "batched_rps": batched.throughput_rps,
            "batched_p50_ms": batched.latency_p50_ms,
            "batched_p99_ms": batched.latency_p99_ms,
            "serve_speedup": speedup,
            "max_batch_observed": int(max(batch_sizes)),
            "batched_native_rps": batched_native.throughput_rps,
            "batched_native_p50_ms": batched_native.latency_p50_ms,
            "batched_native_p99_ms": batched_native.latency_p99_ms,
            "native_backend": backend_view["backend"],
            "native_kernel_status": kernel_meta.get("status"),
            "native_vs_numpy_batched": (
                batched_native.throughput_rps / batched.throughput_rps
            ),
        },
        "scenarios": scenario_reports,
    }
    record_run(BENCH_PATH, record)

    if REPORT_ONLY:
        return
    assert batched.n_errors == 0 and serial.n_errors == 0
    # The native run must serve flawlessly whether or not a compiler
    # exists — that is the transparent-fallback contract.
    assert batched_native.n_errors == 0
    assert speedup >= MIN_SERVE_SPEEDUP, (
        f"microbatched serving only {speedup:.1f}x over the "
        f"single-request loop ({batched.throughput_rps:.0f} vs "
        f"{serial.throughput_rps:.0f} req/s)"
    )


# Telemetry must be close to free: anything past this is a wiring bug
# (a lock on the hot path, rendering per request), not noise.
MAX_TELEMETRY_SLOWDOWN = 2.0


def test_bench_serve_observability():
    """Cost of the telemetry spine at three postures.

    The same microbatched load runs with (a) the hub mirror detached —
    the bare pre-observability hot path, (b) metrics only (the default
    posture: every request feeds the labeled hub series), and
    (c) metrics plus 1%-sampled tracing.  The record captures the
    relative overheads; the asserted floor is catastrophic-only
    (``MAX_TELEMETRY_SLOWDOWN``) because shared runners cannot resolve
    single-digit percents — the <5% metrics-only target is a recorded
    claim, checked on quiet hardware.
    """
    tree, abr_states = _distilled_abr()
    artifact = PolicyArtifact.from_tree(tree, name="abr-distilled")
    pool = abr_states[
        np.random.default_rng(1).integers(0, len(abr_states), 8192)
    ]

    def run(trace_sample, mirror=True, scenario="obs"):
        with _backend("numpy"), PolicyServer(
            max_batch=N_CONCURRENT_CLIENTS, max_delay_s=1e-3,
            trace_sample=trace_sample,
        ) as server:
            if not mirror:
                # Detach the hub mirror to recover the bare seed path.
                # Internal knobs on purpose: production always mirrors,
                # so "telemetry off" exists only as this baseline.
                server._metrics._h_requests = None
                server._metrics._h_errors = None
                server._metrics._h_latency = None
                server._batcher._m_flushes = None
                server._batcher._m_flush_size = None
            server.publish("abr", artifact)
            server.predict("abr", pool[:64])  # warm-up
            report = run_load(
                server, "abr", pool,
                n_clients=N_CONCURRENT_CLIENTS, repeats=BATCHED_PASSES,
                scenario=scenario,
            )
            traced = server.tracer.snapshot()["finished"]
        assert report.n_errors == 0
        return report, traced

    off, _ = run(0.0, mirror=False, scenario="obs-off")
    metrics_only, _ = run(0.0, scenario="obs-metrics")
    traced, n_traces = run(0.01, scenario="obs-traced")

    metrics_loss = 1.0 - metrics_only.throughput_rps / off.throughput_rps
    trace_loss = 1.0 - traced.throughput_rps / off.throughput_rps
    record = {
        "benchmark": "serve-observability",
        "n_clients": N_CONCURRENT_CLIENTS,
        "telemetry_off_rps": off.throughput_rps,
        "metrics_only_rps": metrics_only.throughput_rps,
        "traced_1pct_rps": traced.throughput_rps,
        "metrics_overhead_frac": metrics_loss,
        "traced_1pct_overhead_frac": trace_loss,
        "traces_recorded": int(n_traces),
        "metrics_p99_ms": metrics_only.latency_p99_ms,
        "telemetry_off_p99_ms": off.latency_p99_ms,
    }
    record_run(BENCH_PATH, record)

    if REPORT_ONLY:
        return
    assert n_traces > 0, "1% sampling recorded no traces under load"
    assert (off.throughput_rps
            <= metrics_only.throughput_rps * MAX_TELEMETRY_SLOWDOWN), (
        f"metrics mirror halved throughput: {metrics_only.throughput_rps:.0f}"
        f" vs {off.throughput_rps:.0f} req/s bare"
    )
    assert (off.throughput_rps
            <= traced.throughput_rps * MAX_TELEMETRY_SLOWDOWN), (
        f"1% tracing halved throughput: {traced.throughput_rps:.0f}"
        f" vs {off.throughput_rps:.0f} req/s bare"
    )
