"""Benchmarks regenerating the paper's global-system (RouteNet*) tables
and figures."""

from benchmarks.conftest import run_once


def test_bench_table3_top_masks(benchmark):
    """Table 3: top-5 masks are near 1 and carry shorter/less-congested
    interpretations."""
    result = run_once(benchmark, "table3")
    assert result.metrics["top5_min_mask"] > 0.8
    assert result.metrics["interpretable_fraction"] >= 0.6


def test_bench_fig9_mask_statistics(benchmark):
    """Fig. 9: masks are bimodal (few median values) and mask sums track
    link traffic (strong positive correlation)."""
    result = run_once(benchmark, "fig9")
    assert result.metrics["median_value_fraction"] < 0.15
    assert result.metrics["mean_correlation"] > 0.4


def test_bench_fig18_adjustment(benchmark):
    """Fig. 18: the mask-based indicator predicts the latency ordering of
    rerouting candidates for most decisive triples (paper: 72%)."""
    result = run_once(benchmark, "fig18")
    assert result.metrics["n_points"] > 50
    assert result.metrics["decisive_sign_agreement"] > 0.55


def test_bench_fig29_lambda_sensitivity(benchmark):
    """Figs. 29-30: both lambda knobs respond monotonically."""
    result = run_once(benchmark, "fig29")
    assert result.metrics["scale_monotone_drop"] > 0.0
    assert result.metrics["entropy_monotone_drop"] > 0.0
