"""Benchmark helpers: run each experiment once under pytest-benchmark.

The experiment labs are process-cached (lru_cache) and teacher weights are
disk-cached, so the suite shares trained models across benchmarks.
"""

import pytest


def run_once(benchmark, experiment_id):
    """Execute one experiment harness under the benchmark timer."""
    from repro.experiments import run_experiment

    return benchmark.pedantic(
        lambda: run_experiment(experiment_id, fast=True),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
