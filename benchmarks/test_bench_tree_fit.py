"""Micro-benchmark: tree *fitting* and DAgger *collection* throughput.

PR 1 made tree inference ~20-35x faster, which left the §3.2 conversion
loop dominated by (a) CART fitting — the seed re-argsorted every feature
at every node — and (b) trace collection — one Python ``env.step`` and
one single-state teacher query per chunk.  This benchmark guards the
training-side engines that replaced both:

* **fit**: 100k rows x 8 features, 200 leaves.  The ``presorted`` exact
  engine (argsort once, bit-identical trees) must beat the seed's
  ``legacy`` splitter; the ``hist`` engine (quantile bins, the
  configured choice for large fits) is the >= 5x headline.
* **rollout**: 64 lockstep ABR episodes with an MLP (Pensieve-shaped)
  teacher against the seed's per-episode scalar loop, >= 5x.

Results append to ``BENCH_fit.json`` at the repo root (same trajectory
format as ``BENCH_tree.json``).  Set ``BENCH_REPORT_ONLY=1`` to record
without asserting (CI smoke mode).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from bench_io import record_run

from repro.core.distill.rollout import collect_teacher_dataset_batch
from repro.core.distill.viper import collect_teacher_dataset
from repro.core.tree import DecisionTreeClassifier
from repro.envs.abr import ABREnv, Video
from repro.envs.abr.env import STATE_DIM
from repro.envs.traces import trace_set
from repro.nn.policy import SoftmaxPolicy, ValueNet
from repro.teachers.pensieve import PensieveTeacher
from repro.utils.rng import as_rng

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_fit.json"

N_ROWS = 100_000
N_FEATURES = 8
N_LEAVES = 200
N_EPISODES = 64
N_CHUNKS = 48

REPORT_ONLY = bool(os.environ.get("BENCH_REPORT_ONLY"))

#: Floors asserted locally (CI runs report-only).  The hist engine is
#: the large-n headline; presorted is exact/bit-identical so its win is
#: structurally smaller (it saves the per-node sorts, not the scans).
MIN_FIT_SPEEDUP = 5.0
MIN_PRESORTED_SPEEDUP = 1.3
MIN_ROLLOUT_SPEEDUP = 5.0


def _time(fn, repeats: int = 3) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class _ScalarOnlyEnv:
    """Hide ``as_batch`` so collection takes the seed's scalar path."""

    def __init__(self, env: ABREnv) -> None:
        self._env = env

    def reset(self, rng=None):
        return self._env.reset(rng)

    def step(self, action):
        return self._env.step(action)


def test_bench_tree_fit_and_rollout():
    # ------------------------------------------------------------------
    # fit: legacy vs presorted vs hist on the canonical workload
    # ------------------------------------------------------------------
    rng = np.random.default_rng(7)
    x = rng.normal(size=(N_ROWS, N_FEATURES))
    y = (
        (x[:, 0] > 0).astype(int) * 3
        + (x[:, 1] + x[:, 2] > 0.3).astype(int)
        + (x[:, 3] > 1.0).astype(int) * 2
    )

    fitted = {}

    def fit_with(splitter: str):
        # Keep the last fitted tree so accuracy probes below reuse it
        # instead of paying for an extra 100k-row fit per engine.
        fitted[splitter] = DecisionTreeClassifier(
            max_leaf_nodes=N_LEAVES, splitter=splitter
        ).fit(x, y)
        return fitted[splitter]

    # Correctness before timing: presorted must reproduce legacy
    # bit-for-bit on a subsample (the full suite lives in
    # tests/test_splitter_equivalence.py).
    sub = slice(0, 5_000)
    t_legacy = DecisionTreeClassifier(
        max_leaf_nodes=64, splitter="legacy"
    ).fit(x[sub], y[sub])
    t_presorted = DecisionTreeClassifier(
        max_leaf_nodes=64, splitter="presorted"
    ).fit(x[sub], y[sub])
    assert np.array_equal(t_legacy.flat.threshold, t_presorted.flat.threshold)
    assert np.array_equal(t_legacy.flat.value, t_presorted.flat.value)

    legacy_s = _time(lambda: fit_with("legacy"), repeats=1)
    presorted_s = _time(lambda: fit_with("presorted"), repeats=2)
    hist_s = _time(lambda: fit_with("hist"), repeats=2)
    hist_acc = float((fitted["hist"].predict(x) == y).mean())
    exact_acc = float((fitted["presorted"].predict(x) == y).mean())

    presorted_speedup = legacy_s / presorted_s
    hist_speedup = legacy_s / hist_s

    # ------------------------------------------------------------------
    # rollout collection: scalar per-episode loop vs lockstep batch
    # ------------------------------------------------------------------
    video = Video.synthetic(n_chunks=N_CHUNKS, seed=7)
    traces = trace_set("hsdpa", 16, duration_s=120, seed=8)
    env = ABREnv(video, traces)
    teacher = PensieveTeacher(
        policy=SoftmaxPolicy(
            STATE_DIM, env.n_actions, hidden=(64, 32), seed=as_rng(0)
        ),
        value=ValueNet(STATE_DIM, seed=as_rng(0)),
    )
    scalar_env = _ScalarOnlyEnv(ABREnv(video, traces))

    ds_scalar = collect_teacher_dataset(scalar_env, teacher, 4, rng=1)
    ds_batch = collect_teacher_dataset_batch(env, teacher, 4, rng=1)
    assert np.array_equal(ds_scalar.states, ds_batch.states)
    assert np.array_equal(ds_scalar.actions, ds_batch.actions)

    scalar_s = _time(
        lambda: collect_teacher_dataset(scalar_env, teacher, N_EPISODES,
                                        rng=1),
        repeats=3,
    )
    batch_s = _time(
        lambda: collect_teacher_dataset_batch(env, teacher, N_EPISODES,
                                              rng=1),
        repeats=3,
    )
    rollout_speedup = scalar_s / batch_s
    n_rollout_rows = N_EPISODES * N_CHUNKS

    record = {
        "benchmark": "tree_fit_and_rollout",
        "fit": {
            "n_rows": N_ROWS,
            "n_features": N_FEATURES,
            "n_leaves": N_LEAVES,
            "legacy_s": legacy_s,
            "presorted_s": presorted_s,
            "hist_s": hist_s,
            "presorted_speedup": presorted_speedup,
            "hist_speedup": hist_speedup,
            "fit_speedup": hist_speedup,  # headline: large-n engine
            "hist_train_accuracy": hist_acc,
            "exact_train_accuracy": exact_acc,
        },
        "rollout": {
            "episodes": N_EPISODES,
            "n_rows": n_rollout_rows,
            "scalar_s": scalar_s,
            "batch_s": batch_s,
            "scalar_rows_per_s": n_rollout_rows / scalar_s,
            "batch_rows_per_s": n_rollout_rows / batch_s,
            "rollout_speedup": rollout_speedup,
        },
    }
    record_run(BENCH_PATH, record)

    if REPORT_ONLY:
        return
    assert hist_speedup >= MIN_FIT_SPEEDUP, (
        f"hist fit only {hist_speedup:.1f}x over the legacy splitter "
        f"({hist_s:.2f}s vs {legacy_s:.2f}s)"
    )
    assert presorted_speedup >= MIN_PRESORTED_SPEEDUP, (
        f"presorted fit only {presorted_speedup:.2f}x over the legacy "
        f"splitter ({presorted_s:.2f}s vs {legacy_s:.2f}s)"
    )
    assert rollout_speedup >= MIN_ROLLOUT_SPEEDUP, (
        f"batch collection only {rollout_speedup:.1f}x over the scalar "
        f"loop ({batch_s*1e3:.0f}ms vs {scalar_s*1e3:.0f}ms)"
    )
